//===- examples/affine_lu.cpp - The paper's Listing 1 walk-through ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Reproduces the paper's section 5.1 narrative interactively: builds the LU
// kernel of Listing 1(a), shows the polyhedral facts the compiler derives
// (per-instruction access images, the convex union, NOrig vs NconvUn), and
// prints the synthesized 2-deep prefetch nest replacing the 3-deep original.
// Then repeats with the parameterized two-block kernel of Listing 3 to show
// class separation.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/ScalarEvolution.h"
#include "pm/Analyses.h"
#include "dae/AccessGenerator.h"
#include "dae/AffineGenerator.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "support/Casting.h"

#include <cstdio>

using namespace dae;
using namespace dae::ir;

namespace {

constexpr std::int64_t Dim = 64, Elem = 8;

Function *buildListing1a(Module &M) {
  auto *A = M.getGlobal("A");
  Function *F = M.createFunction("lu_listing1a", Type::Void, {Type::Int64});
  F->setTask(true);
  Value *N = F->getArg(0);
  IRBuilder B(M, F->createBlock("entry"));
  emitCountedLoop(B, B.getInt(0), N, B.getInt(1), "i", [&](IRBuilder &B,
                                                           Value *I) {
    Value *IP1 = B.createAdd(I, B.getInt(1));
    emitCountedLoop(B, IP1, N, B.getInt(1), "j", [&](IRBuilder &B, Value *J) {
      Value *Aji = B.createGep2D(A, J, I, Dim, Elem);
      Value *Aii = B.createGep2D(A, I, I, Dim, Elem);
      B.createStore(B.createFDiv(B.createLoad(Type::Float64, Aji),
                                 B.createLoad(Type::Float64, Aii)),
                    Aji);
      emitCountedLoop(B, IP1, N, B.getInt(1), "k", [&](IRBuilder &B,
                                                       Value *K) {
        Value *Ajk = B.createGep2D(A, J, K, Dim, Elem);
        Value *Aik = B.createGep2D(A, I, K, Dim, Elem);
        B.createStore(
            B.createFSub(B.createLoad(Type::Float64, Ajk),
                         B.createFMul(B.createLoad(Type::Float64, Aji),
                                      B.createLoad(Type::Float64, Aik))),
            Ajk);
      });
    });
  });
  B.createRet();
  return F;
}

Function *buildListing3(Module &M) {
  auto *A = M.getGlobal("A");
  Function *F = M.createFunction(
      "lu_listing3", Type::Void,
      {Type::Int64, Type::Int64, Type::Int64, Type::Int64, Type::Int64});
  F->setTask(true);
  Value *Block = F->getArg(0);
  Value *Ax = F->getArg(1), *Ay = F->getArg(2);
  Value *Dx = F->getArg(3), *Dy = F->getArg(4);
  IRBuilder B(M, F->createBlock("entry"));
  emitCountedLoop(B, B.getInt(0), Block, B.getInt(1), "i", [&](IRBuilder &B,
                                                               Value *I) {
    Value *IP1 = B.createAdd(I, B.getInt(1));
    emitCountedLoop(B, IP1, Block, B.getInt(1), "j", [&](IRBuilder &B,
                                                         Value *J) {
      emitCountedLoop(B, IP1, Block, B.getInt(1), "k", [&](IRBuilder &B,
                                                           Value *K) {
        Value *Dst = B.createGep2D(A, B.createAdd(Ax, J), B.createAdd(Ay, K),
                                   Dim, Elem);
        Value *L = B.createGep2D(A, B.createAdd(Dx, J), B.createAdd(Dy, I),
                                 Dim, Elem);
        Value *R = B.createGep2D(A, B.createAdd(Ax, I), B.createAdd(Ay, K),
                                 Dim, Elem);
        B.createStore(
            B.createFSub(B.createLoad(Type::Float64, Dst),
                         B.createFMul(B.createLoad(Type::Float64, L),
                                      B.createLoad(Type::Float64, R))),
            Dst);
      });
    });
  });
  B.createRet();
  return F;
}

void walkThrough(Module &M, Function *Task,
                 std::vector<std::int64_t> RepArgs) {
  std::printf("==== task @%s ====\n%s\n", Task->getName().c_str(),
              printFunction(*Task).c_str());

  // Show the per-instruction access images the polyhedral stage computes.
  pm::FunctionAnalysisManager FAM;
  analysis::ScalarEvolution &SE =
      FAM.getResult<pm::ScalarEvolutionAnalysis>(*Task);
  std::vector<const Value *> Params;
  for (const auto &Arg : Task->args())
    if (Arg->getType() == Type::Int64)
      Params.push_back(Arg.get());
  unsigned Idx = 0;
  for (const auto &BB : *Task)
    for (const auto &I : *BB) {
      if (!isa<LoadInst>(I.get()))
        continue;
      auto Acc = SE.getAccess(I.get());
      if (!Acc)
        continue;
      auto Img = computeAccessImage(*Acc, SE, Params);
      std::printf("access image #%u (vars: y0 y1 then parameters):\n%s\n",
                  Idx++, Img ? Img->str().c_str() : "<not affine>");
    }

  DaeOptions Opts;
  Opts.RepresentativeArgs = std::move(RepArgs);
  AccessPhaseResult Gen = generateAccessPhase(M, *Task, Opts);
  std::printf("decision: %s\n", Gen.Notes.c_str());
  std::printf("NOrig=%lld NconvUn=%lld classes=%u nests=%u\n", Gen.NOrig,
              Gen.NConvUn, Gen.NumClasses, Gen.NumPrefetchNests);
  if (Gen.AccessFn)
    std::printf("generated access phase:\n%s\n",
                printFunction(*Gen.AccessFn).c_str());
}

} // namespace

int main() {
  Module M("listing_walkthrough");
  M.createGlobal("A", Dim * Dim * Elem);

  walkThrough(M, buildListing1a(M), {16});
  walkThrough(M, buildListing3(M), {8, 16, 16, 40, 40});
  return 0;
}
