//===- examples/quickstart.cpp - Build a task, decouple it, run it ----------===//
//
// Part of daecc, a reproduction of "Fix the code. Don't tweak the hardware"
// (CGO 2014). Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The 60-second tour of the public API:
//   1. build a task in Task IR (a simple vector scale),
//   2. let the compiler generate its access phase,
//   3. run coupled and decoupled on the simulated machine,
//   4. price both under the per-phase Optimal-EDP DVFS policy.
//
//===----------------------------------------------------------------------===//

#include "dae/AccessGenerator.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "runtime/Evaluator.h"
#include "runtime/Runtime.h"

#include <cstdio>

using namespace dae;
using namespace dae::ir;

int main() {
  // -- 1. A module with one task: Dst[i] = 2 * Src[i] over [begin, end). ---
  Module M("quickstart");
  constexpr std::int64_t N = 1 << 16;
  auto *Src = M.createGlobal("Src", N * 8);
  auto *Dst = M.createGlobal("Dst", N * 8);

  Function *Task =
      M.createFunction("scale", Type::Void, {Type::Int64, Type::Int64});
  Task->setTask(true);
  {
    IRBuilder B(M, Task->createBlock("entry"));
    emitCountedLoop(B, Task->getArg(0), Task->getArg(1), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
                      Value *V = B.createLoad(Type::Float64,
                                              B.createGep1D(Src, I, 8));
                      B.createStore(B.createFMul(V, B.getFloat(2.0)),
                                    B.createGep1D(Dst, I, 8));
                    });
    B.createRet();
  }

  // -- 2. Generate the access phase. ---------------------------------------
  DaeOptions Opts;
  AccessPhaseResult Gen = generateAccessPhase(M, *Task, Opts);
  std::printf("== generated access phase (%s strategy) ==\n%s\n",
              analysis::taskClassName(Gen.Strategy),
              Gen.AccessFn ? printFunction(*Gen.AccessFn).c_str()
                           : Gen.Notes.c_str());

  // -- 3. Simulate coupled vs decoupled. ------------------------------------
  sim::MachineConfig Cfg;
  sim::Loader Loader(M);
  auto InitMemory = [&](sim::Memory &Mem) {
    for (std::int64_t I = 0; I != N; ++I)
      Mem.storeF64(Loader.baseOf("Src") + static_cast<std::uint64_t>(I) * 8,
                   static_cast<double>(I));
  };

  std::vector<runtime::Task> Tasks;
  constexpr std::int64_t ChunkElems = 4096;
  for (std::int64_t I = 0; I != N; I += ChunkElems)
    Tasks.push_back({Task,
                     Gen.AccessFn,
                     {sim::RuntimeValue::ofInt(I),
                      sim::RuntimeValue::ofInt(I + ChunkElems)},
                     0});

  sim::Memory MemCae;
  InitMemory(MemCae);
  runtime::TaskRuntime RtCae(Cfg, MemCae, Loader);
  runtime::RunProfile Cae = RtCae.execute(Tasks, /*RunAccess=*/false);

  sim::Memory MemDae;
  InitMemory(MemDae);
  runtime::TaskRuntime RtDae(Cfg, MemDae, Loader);
  runtime::RunProfile Dae = RtDae.execute(Tasks, /*RunAccess=*/true);

  // -- 4. Price both. --------------------------------------------------------
  runtime::RunReport CaeMax =
      runtime::evaluateCoupled(Cae, Cfg, Cfg.fmax());
  runtime::EvalConfig Opt;
  Opt.Policy = runtime::FreqPolicy::OptimalEdp;
  runtime::RunReport DaeOpt = runtime::evaluate(Dae, Cfg, Opt);

  std::printf("CAE @ fmax : time %.3f ms  energy %.4f J  EDP %.6f mJs\n",
              CaeMax.TimeSec * 1e3, CaeMax.EnergyJ, CaeMax.EdpJs * 1e3);
  std::printf("DAE optimal: time %.3f ms  energy %.4f J  EDP %.6f mJs\n",
              DaeOpt.TimeSec * 1e3, DaeOpt.EnergyJ, DaeOpt.EdpJs * 1e3);
  std::printf("EDP improvement: %.1f%%\n",
              (1.0 - DaeOpt.EdpJs / CaeMax.EdpJs) * 100.0);
  return 0;
}
