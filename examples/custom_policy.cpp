//===- examples/custom_policy.cpp - Exploring DVFS policies -----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Uses the evaluator as a design-space tool: for the LibQ workload, sweeps
// every (access f, execute f) pair on the ladder and prints the EDP surface,
// marking the naive Min/Max point and the per-phase Optimal-EDP policy's
// result — showing how close the paper's simple policies get to the best
// fixed split.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

#include <cstdio>

using namespace dae;
using namespace dae::harness;

int main() {
  auto W = workloads::buildLibQuantum(workloads::Scale::Full);
  sim::MachineConfig Cfg;
  AppResult R = runApp(*W, Cfg);
  runtime::RunReport Base = runtime::evaluateCoupled(R.Cae, Cfg, Cfg.fmax());

  std::printf("LibQ: EDP (normalized to CAE@fmax) over the "
              "(access f, execute f) grid\n\n%10s", "acc\\exec");
  for (double FE : Cfg.FrequenciesGHz)
    std::printf("%9.1f", FE);
  std::printf("\n");

  double BestEdp = 1e30, BestFA = 0, BestFE = 0;
  for (double FA : Cfg.FrequenciesGHz) {
    std::printf("%10.1f", FA);
    for (double FE : Cfg.FrequenciesGHz) {
      runtime::EvalConfig E;
      E.Policy = runtime::FreqPolicy::Fixed;
      E.AccessFreqGHz = FA;
      E.ExecFreqGHz = FE;
      runtime::RunReport Rep = runtime::evaluate(R.Auto, Cfg, E);
      if (Rep.EdpJs < BestEdp) {
        BestEdp = Rep.EdpJs;
        BestFA = FA;
        BestFE = FE;
      }
      std::printf("%9.3f", Rep.EdpJs / Base.EdpJs);
    }
    std::printf("\n");
  }

  runtime::EvalConfig Opt;
  Opt.Policy = runtime::FreqPolicy::OptimalEdp;
  runtime::RunReport OptRep = runtime::evaluate(R.Auto, Cfg, Opt);

  std::printf("\nbest fixed split: access %.1f GHz / execute %.1f GHz "
              "-> %.3f x CAE@fmax\n",
              BestFA, BestFE, BestEdp / Base.EdpJs);
  std::printf("per-phase Optimal-EDP policy (section 3.1(b)): %.3f x "
              "CAE@fmax\n",
              OptRep.EdpJs / Base.EdpJs);
  return 0;
}
