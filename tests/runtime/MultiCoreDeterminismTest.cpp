//===- tests/runtime/MultiCoreDeterminismTest.cpp - Co-run determinism ------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The contention timeline's guarantee, extended from the single-run engine:
// co-run TimelineReports are bit-identical for every (Jobs, SimThreads,
// ReplayOverlap) host combination. Solo artifacts are already deterministic;
// the interleave is single-threaded with a fixed tie-break, so nothing about
// the host may leak into the result. All comparisons are exact — EXPECT_EQ
// on doubles included.
//
// Also covers the contention physics the sweep bench relies on (DRAM
// queuing appears under co-run, not solo) and the reactive-governor
// frequency dynamics.
//
//===----------------------------------------------------------------------===//

#include "dae/GenerationMemo.h"
#include "harness/Harness.h"
#include "runtime/Evaluator.h"
#include "runtime/Timeline.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

using namespace dae;
using namespace dae::harness;
using namespace dae::runtime;
using namespace dae::sim;

namespace {

void expectReportsEqual(const TimelineReport &A, const TimelineReport &B,
                        const char *Policy) {
  EXPECT_EQ(A.MakespanNs, B.MakespanNs) << Policy;
  EXPECT_EQ(A.EnergyJ, B.EnergyJ) << Policy;
  EXPECT_EQ(A.EdpJs, B.EdpJs) << Policy;
  ASSERT_EQ(A.Cores.size(), B.Cores.size()) << Policy;
  for (size_t C = 0; C != A.Cores.size(); ++C) {
    const CoreTimelineReport &CA = A.Cores[C];
    const CoreTimelineReport &CB = B.Cores[C];
    EXPECT_EQ(CA.FinishNs, CB.FinishNs) << Policy << " core " << C;
    EXPECT_EQ(CA.EnergyJ, CB.EnergyJ) << Policy << " core " << C;
    EXPECT_EQ(CA.ComputeNs, CB.ComputeNs) << Policy << " core " << C;
    EXPECT_EQ(CA.StallNs, CB.StallNs) << Policy << " core " << C;
    EXPECT_EQ(CA.QueueNs, CB.QueueNs) << Policy << " core " << C;
    EXPECT_EQ(CA.Transitions, CB.Transitions) << Policy << " core " << C;
    EXPECT_EQ(CA.DramMisses, CB.DramMisses) << Policy << " core " << C;
    EXPECT_EQ(CA.Total.Instructions, CB.Total.Instructions)
        << Policy << " core " << C;
    EXPECT_EQ(CA.Total.MemAccesses, CB.Total.MemAccesses)
        << Policy << " core " << C;
  }
}

void expectMixesEqual(const MixResult &A, const MixResult &B) {
  ASSERT_EQ(A.Streams.size(), B.Streams.size());
  for (size_t I = 0; I != A.Streams.size(); ++I) {
    EXPECT_EQ(A.Streams[I].Name, B.Streams[I].Name) << "stream " << I;
    EXPECT_EQ(A.Streams[I].OutputsMatch, B.Streams[I].OutputsMatch)
        << "stream " << I;
  }
  expectReportsEqual(A.CaeMax, B.CaeMax, "cae-max");
  expectReportsEqual(A.CaeOndemand, B.CaeOndemand, "ondemand");
  expectReportsEqual(A.CaeConservative, B.CaeConservative, "conservative");
  expectReportsEqual(A.DaeMinMax, B.DaeMinMax, "dae-minmax");
  expectReportsEqual(A.DaeOracle, B.DaeOracle, "dae-oracle");
}

MixResult runNamedMix(const std::vector<std::string> &Names,
                      const MachineConfig &Cfg, unsigned Jobs,
                      unsigned SimThreads) {
  std::vector<std::unique_ptr<workloads::Workload>> Owned;
  std::vector<workloads::Workload *> Mix;
  for (const std::string &N : Names) {
    Owned.push_back(workloads::buildByName(N, workloads::Scale::Test));
    Mix.push_back(Owned.back().get());
  }
  GenerationMemo Memo;
  MixConfig MC;
  MC.Jobs = Jobs;
  MC.SimThreads = SimThreads;
  MC.Memo = &Memo;
  return runMix(Mix, Cfg, MC);
}

TEST(MultiCoreDeterminism, CoRunIdenticalForAnyHostConfig) {
  MachineConfig Cfg;
  Cfg.NumCores = 4;
  std::vector<std::string> Names = {"libq", "cholesky", "fft"};

  MixResult Ref = runNamedMix(Names, Cfg, 1, 1);
  ASSERT_EQ(Ref.Streams.size(), 3u);
  for (const MixStreamResult &S : Ref.Streams)
    EXPECT_TRUE(S.OutputsMatch) << S.Name;

  struct HostConfig {
    unsigned Jobs, SimThreads;
    bool Overlap;
  };
  for (HostConfig HC : {HostConfig{2, 2, true}, HostConfig{3, 1, false},
                        HostConfig{1, 4, true}, HostConfig{4, 2, false}}) {
    MachineConfig C2 = Cfg;
    C2.ReplayOverlap = HC.Overlap;
    MixResult R = runNamedMix(Names, C2, HC.Jobs, HC.SimThreads);
    SCOPED_TRACE("jobs=" + std::to_string(HC.Jobs) +
                 " threads=" + std::to_string(HC.SimThreads) +
                 " overlap=" + std::to_string(HC.Overlap));
    expectMixesEqual(Ref, R);
  }
}

TEST(MultiCoreDeterminism, OneWaySanity) {
  MachineConfig Cfg;
  Cfg.NumCores = 4;
  MixResult R = runNamedMix({"libq"}, Cfg, 1, 1);
  ASSERT_EQ(R.Streams.size(), 1u);
  EXPECT_TRUE(R.Streams[0].OutputsMatch);
  for (const TimelineReport *T :
       {&R.CaeMax, &R.CaeOndemand, &R.CaeConservative, &R.DaeMinMax,
        &R.DaeOracle}) {
    ASSERT_EQ(T->Cores.size(), 1u);
    EXPECT_GT(T->MakespanNs, 0.0);
    EXPECT_GT(T->EnergyJ, 0.0);
    EXPECT_GT(T->EdpJs, 0.0);
    EXPECT_EQ(T->Cores[0].FinishNs, T->MakespanNs);
  }
  // Alone on the channel, a single in-order core never outruns DRAM: each
  // miss stalls the clock past the line's occupancy before the next one can
  // issue, so queuing is a co-run phenomenon.
  EXPECT_EQ(R.CaeMax.Cores[0].QueueNs, 0.0);
}

TEST(MultiCoreDeterminism, CoRunnersQueueOnDram) {
  MachineConfig Cfg;
  Cfg.NumCores = 4;
  // Two memory-bound streams hammer the shared channel.
  MixResult Solo = runNamedMix({"libq"}, Cfg, 1, 1);
  MixResult Duo = runNamedMix({"libq", "cigar"}, Cfg, 1, 1);
  double QueueNs = 0.0;
  for (const CoreTimelineReport &C : Duo.CaeMax.Cores)
    QueueNs += C.QueueNs;
  EXPECT_GT(QueueNs, 0.0);
  // The co-run can only slow stream 0 down relative to its solo finish.
  EXPECT_GE(Duo.CaeMax.Cores[0].FinishNs, Solo.CaeMax.Cores[0].FinishNs);
}

TEST(MultiCoreDeterminism, MixValidation) {
  MachineConfig Cfg;
  Cfg.NumCores = 2;
  GenerationMemo Memo;
  MixConfig MC;
  MC.Memo = &Memo;
  std::vector<workloads::Workload *> Empty;
  EXPECT_THROW(runMix(Empty, Cfg, MC), std::invalid_argument);

  auto A = workloads::buildByName("libq", workloads::Scale::Test);
  auto B = workloads::buildByName("fft", workloads::Scale::Test);
  auto C = workloads::buildByName("cg", workloads::Scale::Test);
  std::vector<workloads::Workload *> TooMany = {A.get(), B.get(), C.get()};
  EXPECT_THROW(runMix(TooMany, Cfg, MC), std::invalid_argument);
}

TEST(MultiCoreDeterminism, InterleaveRejectsBadStreams) {
  MachineConfig Cfg;
  TimelineConfig TC;
  EXPECT_THROW(interleaveTimeline({}, Cfg, TC), std::invalid_argument);
}

// --- Reactive governor dynamics (runtime/Evaluator.h) ---------------------

TEST(GovernorState, OndemandJumpsToMaxUnderLoad) {
  MachineConfig Cfg;
  GovernorParams P;
  GovernorState G(Cfg, /*Core=*/0, /*Conservative=*/false, P);
  EXPECT_EQ(G.frequency(), Cfg.fminOf(0));
  // One full window of >80% utilization: ondemand pins fmax immediately.
  double WindowNs = P.SampleUs * 1000.0;
  G.account(/*ComputeNs=*/0.95 * WindowNs, /*WallNs=*/WindowNs);
  EXPECT_EQ(G.frequency(), Cfg.fmaxOf(0));
}

TEST(GovernorState, OndemandScalesProportionallyWhenIdle) {
  MachineConfig Cfg;
  GovernorParams P;
  GovernorState G(Cfg, 0, false, P);
  double WindowNs = P.SampleUs * 1000.0;
  // 40% utilization: target = 0.4 * fmax / 0.8 = fmax / 2, rounded up to a
  // ladder rung (cpufreq CPUFREQ_RELATION_L).
  G.account(0.4 * WindowNs, WindowNs);
  double Target = 0.4 * Cfg.fmaxOf(0) / P.UpThreshold;
  EXPECT_EQ(G.frequency(), Cfg.rungAtOrAbove(0, Target));
  EXPECT_LT(G.frequency(), Cfg.fmaxOf(0));
}

TEST(GovernorState, ConservativeStepsOneRungAtATime) {
  MachineConfig Cfg;
  GovernorParams P;
  GovernorState G(Cfg, 0, /*Conservative=*/true, P);
  const std::vector<double> &L = Cfg.ladder(0);
  ASSERT_GE(L.size(), 3u);
  EXPECT_EQ(G.frequency(), L.front());
  double WindowNs = P.SampleUs * 1000.0;
  // Saturated windows climb exactly one rung each.
  G.account(WindowNs, WindowNs);
  EXPECT_EQ(G.frequency(), L[1]);
  G.account(WindowNs, WindowNs);
  EXPECT_EQ(G.frequency(), L[2]);
  // Idle windows walk back down, never skipping.
  G.account(0.0, WindowNs);
  EXPECT_EQ(G.frequency(), L[1]);
  G.account(0.0, WindowNs);
  EXPECT_EQ(G.frequency(), L[0]);
  G.account(0.0, WindowNs);
  EXPECT_EQ(G.frequency(), L[0]);
}

TEST(GovernorState, SubWindowActivityAccumulates) {
  MachineConfig Cfg;
  GovernorParams P;
  GovernorState G(Cfg, 0, false, P);
  double WindowNs = P.SampleUs * 1000.0;
  // Half a window of full load: no decision yet.
  G.account(0.5 * WindowNs, 0.5 * WindowNs);
  EXPECT_EQ(G.frequency(), Cfg.fminOf(0));
  // Completing the window triggers the decision over the whole window.
  G.account(0.5 * WindowNs, 0.5 * WindowNs);
  EXPECT_EQ(G.frequency(), Cfg.fmaxOf(0));
}

TEST(GovernorState, PerCoreLaddersOnBigLittle) {
  MachineConfig Cfg;
  Cfg.makeBigLittle(/*NumBig=*/1, /*NumLittle=*/1);
  GovernorParams P;
  GovernorState Big(Cfg, 0, false, P);
  GovernorState Little(Cfg, 1, false, P);
  double WindowNs = P.SampleUs * 1000.0;
  Big.account(WindowNs, WindowNs);
  Little.account(WindowNs, WindowNs);
  EXPECT_EQ(Big.frequency(), Cfg.fmaxOf(0));
  EXPECT_EQ(Little.frequency(), Cfg.fmaxOf(1));
  EXPECT_GT(Big.frequency(), Little.frequency());
}

} // namespace
