//===- tests/runtime/RuntimeTest.cpp - Runtime & evaluator tests ------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "runtime/Evaluator.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::ir;
using namespace dae::runtime;
using namespace dae::sim;

namespace {

/// A module with one streaming task (Dst[i] = Src[i]) and one access fn.
struct RtFixture {
  Module M;
  Function *Exec;
  Function *Access;
  MachineConfig Cfg;

  RtFixture() {
    auto *Src = M.createGlobal("Src", (1 << 16) * 8);
    auto *Dst = M.createGlobal("Dst", (1 << 16) * 8);
    Exec = M.createFunction("stream", Type::Void, {Type::Int64, Type::Int64});
    {
      IRBuilder B(M, Exec->createBlock("entry"));
      emitCountedLoop(B, Exec->getArg(0), Exec->getArg(1), B.getInt(1), "i",
                      [&](IRBuilder &B, Value *I) {
        Value *V = B.createLoad(Type::Float64, B.createGep1D(Src, I, 8));
        B.createStore(V, B.createGep1D(Dst, I, 8));
      });
      B.createRet();
    }
    Access =
        M.createFunction("stream.acc", Type::Void, {Type::Int64, Type::Int64});
    {
      IRBuilder B(M, Access->createBlock("entry"));
      emitCountedLoop(B, Access->getArg(0), Access->getArg(1), B.getInt(8),
                      "p", [&](IRBuilder &B, Value *I) {
                        B.createPrefetch(B.createGep1D(Src, I, 8));
                      });
      B.createRet();
    }
  }

  std::vector<Task> makeTasks(unsigned NumTasks, unsigned Waves = 1) {
    std::vector<Task> Tasks;
    std::int64_t Chunk = (1 << 16) / NumTasks;
    for (unsigned T = 0; T != NumTasks; ++T)
      Tasks.push_back({Exec,
                       Access,
                       {RuntimeValue::ofInt(T * Chunk),
                        RuntimeValue::ofInt((T + 1) * Chunk)},
                       T % Waves});
    return Tasks;
  }
};

TEST(TaskRuntimeTest, RunsEveryTaskOnce) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(16));
  EXPECT_EQ(P.Tasks.size(), 16u);
  for (const TaskProfile &T : P.Tasks) {
    EXPECT_TRUE(T.HasAccess);
    EXPECT_GT(T.Access.Prefetches, 0u);
    EXPECT_GT(T.Execute.Instructions, 0u);
  }
}

TEST(TaskRuntimeTest, BalancesAcrossCores) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(32));
  std::vector<unsigned> PerCore(Fx.Cfg.NumCores, 0);
  for (const TaskProfile &T : P.Tasks)
    ++PerCore[T.Core];
  for (unsigned C = 0; C != Fx.Cfg.NumCores; ++C)
    EXPECT_GT(PerCore[C], 0u) << "core " << C << " starved";
}

TEST(TaskRuntimeTest, SkippingAccessRunsCoupled) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8), /*RunAccess=*/false);
  for (const TaskProfile &T : P.Tasks) {
    EXPECT_FALSE(T.HasAccess);
    EXPECT_EQ(T.Access.Instructions, 0u);
  }
}

TEST(TaskRuntimeTest, WavesExecuteInOrder) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(16, /*Waves=*/4));
  unsigned LastWave = 0;
  for (const TaskProfile &T : P.Tasks) {
    EXPECT_GE(T.Wave, LastWave) << "wave barrier violated";
    LastWave = T.Wave;
  }
}

TEST(EvaluatorTest, LowerFrequencyCostsTimeSavesDynamicEnergy) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8), /*RunAccess=*/false);

  RunReport Fast = evaluateCoupled(P, Fx.Cfg, Fx.Cfg.fmax());
  RunReport Slow = evaluateCoupled(P, Fx.Cfg, Fx.Cfg.fmin());
  EXPECT_GT(Slow.TimeSec, Fast.TimeSec);
  // A pure stream is memory-bound: the slowdown is far less than the
  // frequency ratio.
  EXPECT_LT(Slow.TimeSec / Fast.TimeSec, Fx.Cfg.fmax() / Fx.Cfg.fmin());
}

TEST(EvaluatorTest, TransitionsCostTimeAndCount) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8));

  EvalConfig MinMax;
  MinMax.Policy = FreqPolicy::Fixed;
  MinMax.AccessFreqGHz = Fx.Cfg.fmin();
  MinMax.ExecFreqGHz = Fx.Cfg.fmax();

  MinMax.TransitionNs = 0.0;
  RunReport NoLatency = evaluate(P, Fx.Cfg, MinMax);
  MinMax.TransitionNs = 500.0;
  RunReport WithLatency = evaluate(P, Fx.Cfg, MinMax);

  // The policy switches frequency the same number of times regardless of
  // how long a switch takes; only the latency/energy charge depends on it.
  EXPECT_GT(NoLatency.NumTransitions, 0u);
  EXPECT_EQ(NoLatency.NumTransitions, WithLatency.NumTransitions);
  EXPECT_GT(WithLatency.TimeSec, NoLatency.TimeSec);
  EXPECT_GT(WithLatency.OsiTimeSec, NoLatency.OsiTimeSec);
}

/// Pins the exact transition count of a hand-built profile: one core, two
/// access+execute tasks under Min/Max (access at fmin, execute at fmax) is
/// fmax(boot) -> fmin -> fmax -> fmin -> fmax = 4 switches, at any
/// transition latency — and the 0 ns case charges nothing for them.
TEST(EvaluatorTest, TransitionCountsPinned) {
  MachineConfig Cfg;
  RunProfile P;
  P.NumCores = 1;
  P.PerTaskOverheadCycles = 0.0;
  TaskProfile T;
  T.HasAccess = true;
  T.Access.Instructions = 100;
  T.Access.ComputeCycles = 1000.0;
  T.Execute.Instructions = 100;
  T.Execute.ComputeCycles = 1000.0;
  P.Tasks = {T, T};

  EvalConfig MinMax;
  MinMax.Policy = FreqPolicy::Fixed;
  MinMax.AccessFreqGHz = Cfg.fmin();
  MinMax.ExecFreqGHz = Cfg.fmax();

  MinMax.TransitionNs = 0.0;
  RunReport Ideal = evaluate(P, Cfg, MinMax);
  EXPECT_EQ(Ideal.NumTransitions, 4u);

  MinMax.TransitionNs = 500.0;
  RunReport Current = evaluate(P, Cfg, MinMax);
  EXPECT_EQ(Current.NumTransitions, 4u);
  // Each of the 4 switches costs 500 ns of makespan on the single core.
  EXPECT_NEAR(Current.TimeSec - Ideal.TimeSec, 4 * 500e-9, 1e-15);

  // Same frequency for both phases at the boot frequency: no switches ever.
  EvalConfig Flat;
  Flat.Policy = FreqPolicy::Fixed;
  Flat.AccessFreqGHz = Cfg.fmax();
  Flat.ExecFreqGHz = Cfg.fmax();
  Flat.TransitionNs = 0.0;
  EXPECT_EQ(evaluate(P, Cfg, Flat).NumTransitions, 0u);
}

/// EDP ties break toward the lower frequency, independent of ladder order: a
/// zero-work phase has EDP 0 at every ladder point, so Optimal-EDP must
/// settle on the lowest frequency whether or not it is listed first.
TEST(EvaluatorTest, EdpTieBreaksTowardLowerFrequency) {
  RunProfile P;
  P.NumCores = 1;
  P.PerTaskOverheadCycles = 0.0;
  TaskProfile T;
  T.HasAccess = true; // Both phases zero work: every frequency ties at 0.
  P.Tasks = {T, T};

  EvalConfig Opt;
  Opt.Policy = FreqPolicy::OptimalEdp;
  Opt.TransitionNs = 0.0;

  // Ascending ladder: cores boot at fmax, every tied phase picks fmin —
  // exactly one switch on the single core.
  MachineConfig Cfg;
  EXPECT_EQ(evaluate(P, Cfg, Opt).NumTransitions, 1u)
      << "tied phases must all pick the lowest frequency";

  // Same ladder listed high-to-low: cores boot at 1.6 (the last entry) and a
  // first-match scan would hop to 3.4; the order-independent tie break keeps
  // every phase at 1.6, so no switch happens at all.
  Cfg.FrequenciesGHz = {3.4, 2.8, 2.0, 1.6};
  EXPECT_EQ(evaluate(P, Cfg, Opt).NumTransitions, 0u)
      << "tie break must not depend on ladder order";
}

TEST(EvaluatorTest, SameFrequencyNeverTransitions) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8));
  EvalConfig E;
  E.Policy = FreqPolicy::Fixed;
  E.AccessFreqGHz = 2.4;
  E.ExecFreqGHz = 2.4;
  E.TransitionNs = 500.0;
  RunReport R = evaluate(P, Fx.Cfg, E);
  // One initial switch from the boot frequency (fmax) at most per core.
  EXPECT_LE(R.NumTransitions, static_cast<std::size_t>(Fx.Cfg.NumCores));
}

TEST(EvaluatorTest, OptimalEdpBeatsOrMatchesFixedPolicies) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8));

  EvalConfig Opt;
  Opt.Policy = FreqPolicy::OptimalEdp;
  Opt.TransitionNs = 0.0;
  RunReport OptRep = evaluate(P, Fx.Cfg, Opt);

  for (double FA : Fx.Cfg.FrequenciesGHz)
    for (double FE : Fx.Cfg.FrequenciesGHz) {
      EvalConfig E;
      E.Policy = FreqPolicy::Fixed;
      E.AccessFreqGHz = FA;
      E.ExecFreqGHz = FE;
      E.TransitionNs = 0.0;
      RunReport Fixed = evaluate(P, Fx.Cfg, E);
      // Local per-phase optimization is near-optimal for homogeneous tasks:
      // allow a small tolerance over the best grid point.
      EXPECT_LE(OptRep.EdpJs, Fixed.EdpJs * 1.02)
          << "fixed (" << FA << ", " << FE << ") beat OptimalEdp";
    }
}

// --- GovernorState: degenerate accounting sequences -----------------------

TEST(GovernorStateTest, ZeroWallSpanIsDiscarded) {
  MachineConfig Cfg;
  GovernorParams P;
  GovernorState G(Cfg, 0, /*Conservative=*/false, P);
  const double WindowNs = P.SampleUs * 1000.0;

  // A zero-wall span is unobservable: no division by zero, no frequency
  // change, and — critically — no stale compute smeared into later windows.
  G.account(1e9, 0.0);
  EXPECT_DOUBLE_EQ(G.frequency(), Cfg.fmin());

  // A fully idle window right after must decide on 0% utilization, not on
  // the discarded span's compute.
  G.account(0.0, WindowNs);
  EXPECT_DOUBLE_EQ(G.frequency(), Cfg.fmin());
}

TEST(GovernorStateTest, SubWindowSpansAccumulateChronologically) {
  MachineConfig Cfg;
  GovernorParams P;
  GovernorState G(Cfg, 0, /*Conservative=*/false, P);
  const double WindowNs = P.SampleUs * 1000.0;

  // 90% of a window fully busy: no window has completed yet, so no decision.
  G.account(0.9 * WindowNs, 0.9 * WindowNs);
  EXPECT_DOUBLE_EQ(G.frequency(), Cfg.fmin());

  // The next idle span completes the window. Its decision must see only the
  // time that fell inside the window: 90% busy + 10% idle = 90% > the 80%
  // up-threshold, so ondemand jumps to fmax.
  G.account(0.0, 0.2 * WindowNs);
  EXPECT_DOUBLE_EQ(G.frequency(), Cfg.fmax());

  // The remaining 10% idle backlog belongs to the *next* window; after it
  // fills up fully idle, the decision is 0% utilization -> fmin. Stale
  // busy time from the first window must not leak in.
  G.account(0.0, 0.9 * WindowNs);
  EXPECT_DOUBLE_EQ(G.frequency(), Cfg.fmin());
}

TEST(GovernorStateTest, OverfullComputeSaturatesItsOwnSpanOnly) {
  MachineConfig Cfg;
  GovernorParams P;
  GovernorState G(Cfg, 0, /*Conservative=*/false, P);
  const double WindowNs = P.SampleUs * 1000.0;

  // More compute than wall time saturates at 100% for its own duration; a
  // window that is half saturated and half idle reads 50%, which ondemand
  // maps below fmax.
  G.account(10.0 * WindowNs, 0.5 * WindowNs);
  G.account(0.0, 0.5 * WindowNs);
  double F = G.frequency();
  EXPECT_LT(F, Cfg.fmax()) << "50% utilization must not read as busy";
  EXPECT_DOUBLE_EQ(F, Cfg.rungAtOrAbove(0, 0.5 * Cfg.fmax() / P.UpThreshold));
}

TEST(GovernorStateTest, ConservativeStepsOneRungPerWindow) {
  MachineConfig Cfg;
  GovernorParams P;
  GovernorState G(Cfg, 0, /*Conservative=*/true, P);
  const double WindowNs = P.SampleUs * 1000.0;

  // One fully busy multi-window span ramps one rung per completed window —
  // chronological consumption, not one decision for the whole span.
  G.account(3.0 * WindowNs, 3.0 * WindowNs);
  EXPECT_DOUBLE_EQ(G.frequency(), Cfg.FrequenciesGHz[3]);

  // Zero-wall glitches between windows leave the ramp untouched.
  G.account(1e12, 0.0);
  G.account(WindowNs, WindowNs);
  EXPECT_DOUBLE_EQ(G.frequency(), Cfg.FrequenciesGHz[4]);

  // Idle windows walk back down one rung at a time.
  G.account(0.0, WindowNs);
  EXPECT_DOUBLE_EQ(G.frequency(), Cfg.FrequenciesGHz[3]);
}

// --- Fixed policy on heterogeneous (big.LITTLE) ladders -------------------

/// A hand-built two-core profile with one access+execute task per core.
static RunProfile twoCoreProfile() {
  RunProfile P;
  P.NumCores = 2;
  P.PerTaskOverheadCycles = 0.0;
  for (unsigned C = 0; C != 2; ++C) {
    TaskProfile T;
    T.Core = C;
    T.HasAccess = true;
    T.Access.Instructions = 100;
    T.Access.ComputeCycles = 1000.0;
    T.Execute.Instructions = 100;
    T.Execute.ComputeCycles = 1000.0;
    P.Tasks.push_back(T);
  }
  return P;
}

TEST(EvaluatorTest, FixedTargetsClampToEachCoresOwnLadder) {
  MachineConfig Cfg;
  Cfg.makeBigLittle(1, 1);
  RunProfile P = twoCoreProfile();

  // Min/Max with the big ladder's endpoints: the little core (fmax 1.4,
  // fmin 0.6) must run each phase at its own clamped frequency. Pricing the
  // same profile with per-core in-range targets must agree exactly.
  EvalConfig MinMax;
  MinMax.Policy = FreqPolicy::Fixed;
  MinMax.AccessFreqGHz = Cfg.fmin(); // 1.6 — above the little fmax of 1.4.
  MinMax.ExecFreqGHz = Cfg.fmax();   // 3.4 — ditto.
  MinMax.TransitionNs = 500.0;
  RunReport Clamped = evaluate(P, Cfg, MinMax);
  EXPECT_GT(Clamped.TimeSec, 0.0);

  // Both targets clamp to 1.4 on the little core, so it never switches;
  // only the big core does: boot fmax -> 1.6 (access) -> 3.4 (execute).
  EXPECT_EQ(Clamped.NumTransitions, 2u)
      << "little-core off-ladder targets must collapse to its single "
         "clamped point";

  // A little-only profile priced at off-ladder targets must be identical to
  // pricing it at the clamped in-range targets.
  RunProfile LittleOnly = twoCoreProfile();
  LittleOnly.Tasks.erase(LittleOnly.Tasks.begin()); // keep core 1.
  RunReport OffLadder = evaluate(LittleOnly, Cfg, MinMax);
  EvalConfig InRange = MinMax;
  InRange.AccessFreqGHz = Cfg.fmaxOf(1);
  InRange.ExecFreqGHz = Cfg.fmaxOf(1);
  RunReport AtClamp = evaluate(LittleOnly, Cfg, InRange);
  EXPECT_DOUBLE_EQ(OffLadder.TimeSec, AtClamp.TimeSec);
  EXPECT_DOUBLE_EQ(OffLadder.EnergyJ, AtClamp.EnergyJ);
  EXPECT_EQ(OffLadder.NumTransitions, AtClamp.NumTransitions);
}

TEST(EvaluatorTest, BigCoreClampsBelowItsFmin) {
  MachineConfig Cfg;
  Cfg.makeBigLittle(1, 1);
  RunProfile BigOnly = twoCoreProfile();
  BigOnly.Tasks.pop_back(); // keep core 0.

  // A target below the big core's fmin (e.g. a little-ladder frequency
  // applied machine-wide) clamps up to the big fmin.
  EvalConfig E;
  E.Policy = FreqPolicy::Fixed;
  E.AccessFreqGHz = 0.6;
  E.ExecFreqGHz = 0.6;
  E.TransitionNs = 0.0;
  EvalConfig AtFmin = E;
  AtFmin.AccessFreqGHz = AtFmin.ExecFreqGHz = Cfg.fminOf(0);
  RunReport Low = evaluate(BigOnly, Cfg, E);
  RunReport Ref = evaluate(BigOnly, Cfg, AtFmin);
  EXPECT_DOUBLE_EQ(Low.TimeSec, Ref.TimeSec);
  EXPECT_DOUBLE_EQ(Low.EnergyJ, Ref.EnergyJ);
}

TEST(EvaluatorTest, CoresBootAtTheirOwnFmax) {
  MachineConfig Cfg;
  Cfg.makeBigLittle(1, 1);
  RunProfile LittleOnly = twoCoreProfile();
  LittleOnly.Tasks.erase(LittleOnly.Tasks.begin());

  // Running the little core at its own fmax from the start must cost zero
  // transitions: it boots at 1.4, not at the big ladder's 3.4.
  EvalConfig E;
  E.Policy = FreqPolicy::Fixed;
  E.AccessFreqGHz = Cfg.fmaxOf(1);
  E.ExecFreqGHz = Cfg.fmaxOf(1);
  E.TransitionNs = 500.0;
  EXPECT_EQ(evaluate(LittleOnly, Cfg, E).NumTransitions, 0u)
      << "little core must boot at its own ladder's top rung";
}

TEST(EvaluatorTest, BreakdownBucketsSumSanely) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8));
  EvalConfig E;
  E.Policy = FreqPolicy::Fixed;
  E.AccessFreqGHz = Fx.Cfg.fmin();
  E.ExecFreqGHz = Fx.Cfg.fmax();
  RunReport R = evaluate(P, Fx.Cfg, E);
  // Core-seconds across buckets equals cores x makespan.
  double Total = R.AccessTimeSec + R.ExecuteTimeSec + R.OsiTimeSec;
  EXPECT_NEAR(Total, R.TimeSec * Fx.Cfg.NumCores, R.TimeSec * 0.01);
  EXPECT_GT(R.AccessTimeSec, 0.0);
  EXPECT_GT(R.ExecuteTimeSec, 0.0);
}

} // namespace
