//===- tests/runtime/RuntimeTest.cpp - Runtime & evaluator tests ------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "runtime/Evaluator.h"
#include "runtime/Runtime.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::ir;
using namespace dae::runtime;
using namespace dae::sim;

namespace {

/// A module with one streaming task (Dst[i] = Src[i]) and one access fn.
struct RtFixture {
  Module M;
  Function *Exec;
  Function *Access;
  MachineConfig Cfg;

  RtFixture() {
    auto *Src = M.createGlobal("Src", (1 << 16) * 8);
    auto *Dst = M.createGlobal("Dst", (1 << 16) * 8);
    Exec = M.createFunction("stream", Type::Void, {Type::Int64, Type::Int64});
    {
      IRBuilder B(M, Exec->createBlock("entry"));
      emitCountedLoop(B, Exec->getArg(0), Exec->getArg(1), B.getInt(1), "i",
                      [&](IRBuilder &B, Value *I) {
        Value *V = B.createLoad(Type::Float64, B.createGep1D(Src, I, 8));
        B.createStore(V, B.createGep1D(Dst, I, 8));
      });
      B.createRet();
    }
    Access =
        M.createFunction("stream.acc", Type::Void, {Type::Int64, Type::Int64});
    {
      IRBuilder B(M, Access->createBlock("entry"));
      emitCountedLoop(B, Access->getArg(0), Access->getArg(1), B.getInt(8),
                      "p", [&](IRBuilder &B, Value *I) {
                        B.createPrefetch(B.createGep1D(Src, I, 8));
                      });
      B.createRet();
    }
  }

  std::vector<Task> makeTasks(unsigned NumTasks, unsigned Waves = 1) {
    std::vector<Task> Tasks;
    std::int64_t Chunk = (1 << 16) / NumTasks;
    for (unsigned T = 0; T != NumTasks; ++T)
      Tasks.push_back({Exec,
                       Access,
                       {RuntimeValue::ofInt(T * Chunk),
                        RuntimeValue::ofInt((T + 1) * Chunk)},
                       T % Waves});
    return Tasks;
  }
};

TEST(TaskRuntimeTest, RunsEveryTaskOnce) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(16));
  EXPECT_EQ(P.Tasks.size(), 16u);
  for (const TaskProfile &T : P.Tasks) {
    EXPECT_TRUE(T.HasAccess);
    EXPECT_GT(T.Access.Prefetches, 0u);
    EXPECT_GT(T.Execute.Instructions, 0u);
  }
}

TEST(TaskRuntimeTest, BalancesAcrossCores) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(32));
  std::vector<unsigned> PerCore(Fx.Cfg.NumCores, 0);
  for (const TaskProfile &T : P.Tasks)
    ++PerCore[T.Core];
  for (unsigned C = 0; C != Fx.Cfg.NumCores; ++C)
    EXPECT_GT(PerCore[C], 0u) << "core " << C << " starved";
}

TEST(TaskRuntimeTest, SkippingAccessRunsCoupled) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8), /*RunAccess=*/false);
  for (const TaskProfile &T : P.Tasks) {
    EXPECT_FALSE(T.HasAccess);
    EXPECT_EQ(T.Access.Instructions, 0u);
  }
}

TEST(TaskRuntimeTest, WavesExecuteInOrder) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(16, /*Waves=*/4));
  unsigned LastWave = 0;
  for (const TaskProfile &T : P.Tasks) {
    EXPECT_GE(T.Wave, LastWave) << "wave barrier violated";
    LastWave = T.Wave;
  }
}

TEST(EvaluatorTest, LowerFrequencyCostsTimeSavesDynamicEnergy) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8), /*RunAccess=*/false);

  RunReport Fast = evaluateCoupled(P, Fx.Cfg, Fx.Cfg.fmax());
  RunReport Slow = evaluateCoupled(P, Fx.Cfg, Fx.Cfg.fmin());
  EXPECT_GT(Slow.TimeSec, Fast.TimeSec);
  // A pure stream is memory-bound: the slowdown is far less than the
  // frequency ratio.
  EXPECT_LT(Slow.TimeSec / Fast.TimeSec, Fx.Cfg.fmax() / Fx.Cfg.fmin());
}

TEST(EvaluatorTest, TransitionsCostTimeAndCount) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8));

  EvalConfig MinMax;
  MinMax.Policy = FreqPolicy::Fixed;
  MinMax.AccessFreqGHz = Fx.Cfg.fmin();
  MinMax.ExecFreqGHz = Fx.Cfg.fmax();

  MinMax.TransitionNs = 0.0;
  RunReport NoLatency = evaluate(P, Fx.Cfg, MinMax);
  MinMax.TransitionNs = 500.0;
  RunReport WithLatency = evaluate(P, Fx.Cfg, MinMax);

  // The policy switches frequency the same number of times regardless of
  // how long a switch takes; only the latency/energy charge depends on it.
  EXPECT_GT(NoLatency.NumTransitions, 0u);
  EXPECT_EQ(NoLatency.NumTransitions, WithLatency.NumTransitions);
  EXPECT_GT(WithLatency.TimeSec, NoLatency.TimeSec);
  EXPECT_GT(WithLatency.OsiTimeSec, NoLatency.OsiTimeSec);
}

/// Pins the exact transition count of a hand-built profile: one core, two
/// access+execute tasks under Min/Max (access at fmin, execute at fmax) is
/// fmax(boot) -> fmin -> fmax -> fmin -> fmax = 4 switches, at any
/// transition latency — and the 0 ns case charges nothing for them.
TEST(EvaluatorTest, TransitionCountsPinned) {
  MachineConfig Cfg;
  RunProfile P;
  P.NumCores = 1;
  P.PerTaskOverheadCycles = 0.0;
  TaskProfile T;
  T.HasAccess = true;
  T.Access.Instructions = 100;
  T.Access.ComputeCycles = 1000.0;
  T.Execute.Instructions = 100;
  T.Execute.ComputeCycles = 1000.0;
  P.Tasks = {T, T};

  EvalConfig MinMax;
  MinMax.Policy = FreqPolicy::Fixed;
  MinMax.AccessFreqGHz = Cfg.fmin();
  MinMax.ExecFreqGHz = Cfg.fmax();

  MinMax.TransitionNs = 0.0;
  RunReport Ideal = evaluate(P, Cfg, MinMax);
  EXPECT_EQ(Ideal.NumTransitions, 4u);

  MinMax.TransitionNs = 500.0;
  RunReport Current = evaluate(P, Cfg, MinMax);
  EXPECT_EQ(Current.NumTransitions, 4u);
  // Each of the 4 switches costs 500 ns of makespan on the single core.
  EXPECT_NEAR(Current.TimeSec - Ideal.TimeSec, 4 * 500e-9, 1e-15);

  // Same frequency for both phases at the boot frequency: no switches ever.
  EvalConfig Flat;
  Flat.Policy = FreqPolicy::Fixed;
  Flat.AccessFreqGHz = Cfg.fmax();
  Flat.ExecFreqGHz = Cfg.fmax();
  Flat.TransitionNs = 0.0;
  EXPECT_EQ(evaluate(P, Cfg, Flat).NumTransitions, 0u);
}

/// EDP ties break toward the lower frequency, independent of ladder order: a
/// zero-work phase has EDP 0 at every ladder point, so Optimal-EDP must
/// settle on the lowest frequency whether or not it is listed first.
TEST(EvaluatorTest, EdpTieBreaksTowardLowerFrequency) {
  RunProfile P;
  P.NumCores = 1;
  P.PerTaskOverheadCycles = 0.0;
  TaskProfile T;
  T.HasAccess = true; // Both phases zero work: every frequency ties at 0.
  P.Tasks = {T, T};

  EvalConfig Opt;
  Opt.Policy = FreqPolicy::OptimalEdp;
  Opt.TransitionNs = 0.0;

  // Ascending ladder: cores boot at fmax, every tied phase picks fmin —
  // exactly one switch on the single core.
  MachineConfig Cfg;
  EXPECT_EQ(evaluate(P, Cfg, Opt).NumTransitions, 1u)
      << "tied phases must all pick the lowest frequency";

  // Same ladder listed high-to-low: cores boot at 1.6 (the last entry) and a
  // first-match scan would hop to 3.4; the order-independent tie break keeps
  // every phase at 1.6, so no switch happens at all.
  Cfg.FrequenciesGHz = {3.4, 2.8, 2.0, 1.6};
  EXPECT_EQ(evaluate(P, Cfg, Opt).NumTransitions, 0u)
      << "tie break must not depend on ladder order";
}

TEST(EvaluatorTest, SameFrequencyNeverTransitions) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8));
  EvalConfig E;
  E.Policy = FreqPolicy::Fixed;
  E.AccessFreqGHz = 2.4;
  E.ExecFreqGHz = 2.4;
  E.TransitionNs = 500.0;
  RunReport R = evaluate(P, Fx.Cfg, E);
  // One initial switch from the boot frequency (fmax) at most per core.
  EXPECT_LE(R.NumTransitions, static_cast<std::size_t>(Fx.Cfg.NumCores));
}

TEST(EvaluatorTest, OptimalEdpBeatsOrMatchesFixedPolicies) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8));

  EvalConfig Opt;
  Opt.Policy = FreqPolicy::OptimalEdp;
  Opt.TransitionNs = 0.0;
  RunReport OptRep = evaluate(P, Fx.Cfg, Opt);

  for (double FA : Fx.Cfg.FrequenciesGHz)
    for (double FE : Fx.Cfg.FrequenciesGHz) {
      EvalConfig E;
      E.Policy = FreqPolicy::Fixed;
      E.AccessFreqGHz = FA;
      E.ExecFreqGHz = FE;
      E.TransitionNs = 0.0;
      RunReport Fixed = evaluate(P, Fx.Cfg, E);
      // Local per-phase optimization is near-optimal for homogeneous tasks:
      // allow a small tolerance over the best grid point.
      EXPECT_LE(OptRep.EdpJs, Fixed.EdpJs * 1.02)
          << "fixed (" << FA << ", " << FE << ") beat OptimalEdp";
    }
}

TEST(EvaluatorTest, BreakdownBucketsSumSanely) {
  RtFixture Fx;
  Memory Mem;
  Loader L(Fx.M);
  TaskRuntime RT(Fx.Cfg, Mem, L);
  RunProfile P = RT.execute(Fx.makeTasks(8));
  EvalConfig E;
  E.Policy = FreqPolicy::Fixed;
  E.AccessFreqGHz = Fx.Cfg.fmin();
  E.ExecFreqGHz = Fx.Cfg.fmax();
  RunReport R = evaluate(P, Fx.Cfg, E);
  // Core-seconds across buckets equals cores x makespan.
  double Total = R.AccessTimeSec + R.ExecuteTimeSec + R.OsiTimeSec;
  EXPECT_NEAR(Total, R.TimeSec * Fx.Cfg.NumCores, R.TimeSec * 0.01);
  EXPECT_GT(R.AccessTimeSec, 0.0);
  EXPECT_GT(R.ExecuteTimeSec, 0.0);
}

} // namespace
