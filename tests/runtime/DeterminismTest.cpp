//===- tests/runtime/DeterminismTest.cpp - Host-parallel determinism --------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The engine's core guarantee: RunProfiles are bit-identical for every
// --sim-threads value. Every comparison here is exact (EXPECT_EQ on doubles
// included) — any divergence between thread counts is a bug, not noise.
//
//===----------------------------------------------------------------------===//

#include "dae/GenerationMemo.h"
#include "harness/Harness.h"
#include "ir/IRBuilder.h"
#include "runtime/Runtime.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace dae;
using namespace dae::ir;
using namespace dae::runtime;
using namespace dae::sim;

namespace {

void expectStatsEqual(const PhaseStats &A, const PhaseStats &B,
                      const char *What, size_t TaskIdx) {
  EXPECT_EQ(A.Instructions, B.Instructions) << What << " task " << TaskIdx;
  EXPECT_EQ(A.ComputeCycles, B.ComputeCycles) << What << " task " << TaskIdx;
  EXPECT_EQ(A.StallNs, B.StallNs) << What << " task " << TaskIdx;
  EXPECT_EQ(A.Loads, B.Loads) << What << " task " << TaskIdx;
  EXPECT_EQ(A.Stores, B.Stores) << What << " task " << TaskIdx;
  EXPECT_EQ(A.Prefetches, B.Prefetches) << What << " task " << TaskIdx;
  EXPECT_EQ(A.L1Hits, B.L1Hits) << What << " task " << TaskIdx;
  EXPECT_EQ(A.L2Hits, B.L2Hits) << What << " task " << TaskIdx;
  EXPECT_EQ(A.LLCHits, B.LLCHits) << What << " task " << TaskIdx;
  EXPECT_EQ(A.MemAccesses, B.MemAccesses) << What << " task " << TaskIdx;
}

void expectProfilesEqual(const RunProfile &A, const RunProfile &B) {
  EXPECT_EQ(A.NumCores, B.NumCores);
  ASSERT_EQ(A.Tasks.size(), B.Tasks.size());
  for (size_t I = 0; I != A.Tasks.size(); ++I) {
    const TaskProfile &TA = A.Tasks[I];
    const TaskProfile &TB = B.Tasks[I];
    EXPECT_EQ(TA.Core, TB.Core) << "task " << I;
    EXPECT_EQ(TA.Wave, TB.Wave) << "task " << I;
    EXPECT_EQ(TA.HasAccess, TB.HasAccess) << "task " << I;
    expectStatsEqual(TA.Access, TB.Access, "access", I);
    expectStatsEqual(TA.Execute, TB.Execute, "execute", I);
  }
}

/// A module with one streaming task (Dst[i] = Src[i]) and one access fn.
struct RtFixture {
  Module M;
  Function *Exec;
  Function *Access;
  MachineConfig Cfg;

  RtFixture() {
    auto *Src = M.createGlobal("Src", (1 << 16) * 8);
    auto *Dst = M.createGlobal("Dst", (1 << 16) * 8);
    Exec = M.createFunction("stream", Type::Void, {Type::Int64, Type::Int64});
    {
      IRBuilder B(M, Exec->createBlock("entry"));
      emitCountedLoop(B, Exec->getArg(0), Exec->getArg(1), B.getInt(1), "i",
                      [&](IRBuilder &B, Value *I) {
        Value *V = B.createLoad(Type::Float64, B.createGep1D(Src, I, 8));
        B.createStore(V, B.createGep1D(Dst, I, 8));
      });
      B.createRet();
    }
    Access =
        M.createFunction("stream.acc", Type::Void, {Type::Int64, Type::Int64});
    {
      IRBuilder B(M, Access->createBlock("entry"));
      emitCountedLoop(B, Access->getArg(0), Access->getArg(1), B.getInt(8),
                      "p", [&](IRBuilder &B, Value *I) {
                        B.createPrefetch(B.createGep1D(Src, I, 8));
                      });
      B.createRet();
    }
  }

  std::vector<Task> makeTasks(unsigned NumTasks, unsigned Waves = 1) {
    std::vector<Task> Tasks;
    std::int64_t Chunk = (1 << 16) / NumTasks;
    for (unsigned T = 0; T != NumTasks; ++T)
      Tasks.push_back({Exec,
                       Access,
                       {RuntimeValue::ofInt(T * Chunk),
                        RuntimeValue::ofInt((T + 1) * Chunk)},
                       T % Waves});
    return Tasks;
  }

  /// Runs the same task set with \p Threads workers on fresh memory.
  RunProfile run(unsigned Threads, unsigned NumTasks, unsigned Waves,
                 bool RunAccess) {
    MachineConfig C = Cfg;
    C.SimThreads = Threads;
    Memory Mem;
    Loader L(M);
    TaskRuntime RT(C, Mem, L);
    return RT.execute(makeTasks(NumTasks, Waves), RunAccess);
  }
};

class StreamDeterminismTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(StreamDeterminismTest, MatchesSequentialReference) {
  RtFixture Fx;
  unsigned Threads = GetParam();
  struct Shape {
    unsigned Tasks, Waves;
    bool RunAccess;
  };
  // Uneven task/wave/core divisions on purpose: they exercise stealing and
  // partially-filled waves, where schedule bugs would hide.
  for (Shape S : {Shape{32, 1, true}, Shape{16, 4, true}, Shape{15, 3, true},
                  Shape{7, 2, true}, Shape{16, 4, false}}) {
    RunProfile Seq = Fx.run(1, S.Tasks, S.Waves, S.RunAccess);
    RunProfile Par = Fx.run(Threads, S.Tasks, S.Waves, S.RunAccess);
    expectProfilesEqual(Seq, Par);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, StreamDeterminismTest,
                         ::testing::Values(2u, 4u, 7u));

/// End-to-end: all seven paper workloads through the full harness (CAE,
/// Manual DAE, Auto DAE) must profile bit-identically at 1 and 4 threads.
class WorkloadDeterminismTest : public ::testing::TestWithParam<const char *> {
};

TEST_P(WorkloadDeterminismTest, FourThreadsMatchOne) {
  auto RunAt = [&](unsigned Threads) {
    MachineConfig Cfg;
    Cfg.SimThreads = Threads;
    auto W = workloads::buildByName(GetParam(), workloads::Scale::Test);
    return harness::runApp(*W, Cfg);
  };
  harness::AppResult Seq = RunAt(1);
  harness::AppResult Par = RunAt(4);
  EXPECT_TRUE(Seq.OutputsMatch);
  EXPECT_TRUE(Par.OutputsMatch);
  expectProfilesEqual(Seq.Cae, Par.Cae);
  expectProfilesEqual(Seq.Manual, Par.Manual);
  expectProfilesEqual(Seq.Auto, Par.Auto);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadDeterminismTest,
                         ::testing::Values("lu", "cholesky", "fft", "lbm",
                                           "libq", "cigar", "cg"));

void expectCapturesEqual(const RunCapture &A, const RunCapture &B) {
  EXPECT_EQ(A.LineBytes, B.LineBytes);
  ASSERT_EQ(A.Tasks.size(), B.Tasks.size());
  for (size_t I = 0; I != A.Tasks.size(); ++I) {
    EXPECT_EQ(A.Tasks[I].HasAccess, B.Tasks[I].HasAccess) << "task " << I;
    EXPECT_EQ(A.Tasks[I].Access.Lines, B.Tasks[I].Access.Lines)
        << "access lines, task " << I;
    EXPECT_EQ(A.Tasks[I].Access.MissLines, B.Tasks[I].Access.MissLines)
        << "access misses, task " << I;
    EXPECT_EQ(A.Tasks[I].Execute.Lines, B.Tasks[I].Execute.Lines)
        << "execute lines, task " << I;
    EXPECT_EQ(A.Tasks[I].Execute.MissLines, B.Tasks[I].Execute.MissLines)
        << "execute misses, task " << I;
  }
}

/// Pipelined replay (--no-replay-overlap off by default) must not perturb a
/// single simulated bit: for each paper workload, the Manual-DAE task set is
/// profiled under every (SimThreads, ReplayOverlap, capture on/off)
/// combination, and both the RunProfile and the RunCapture are compared
/// exactly against the sequential overlap-free reference.
class OverlapDeterminismTest : public ::testing::TestWithParam<const char *> {
};

TEST_P(OverlapDeterminismTest, OverlapMatchesReference) {
  auto W = workloads::buildByName(GetParam(), workloads::Scale::Test);
  Loader L(*W->M);
  // Manual-DAE task list: decoupled tasks drive both the access and execute
  // replay paths (and both capture phases) per task.
  std::vector<Task> Tasks = W->Tasks;
  for (Task &T : Tasks) {
    auto It = W->ManualAccess.find(T.Execute);
    if (It != W->ManualAccess.end())
      T.Access = It->second;
  }

  auto Run = [&](unsigned Threads, bool Overlap, RunCapture *Cap) {
    MachineConfig Cfg;
    Cfg.SimThreads = Threads;
    Cfg.ReplayOverlap = Overlap;
    Memory Mem;
    W->Init(Mem, L);
    TaskRuntime RT(Cfg, Mem, L);
    return RT.execute(Tasks, /*RunAccess=*/true, Cap);
  };

  RunCapture RefCap;
  RunProfile Ref = Run(/*Threads=*/1, /*Overlap=*/false, &RefCap);

  for (unsigned Threads : {1u, 2u, 8u}) {
    for (bool Overlap : {false, true}) {
      RunCapture Cap;
      expectProfilesEqual(Ref, Run(Threads, Overlap, &Cap));
      expectCapturesEqual(RefCap, Cap);
      // Capture off must not change the profile either (the capture hook
      // sits inside the replay fast path).
      expectProfilesEqual(Ref, Run(Threads, Overlap, nullptr));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, OverlapDeterminismTest,
                         ::testing::Values("lu", "cholesky", "fft", "lbm",
                                           "libq", "cigar", "cg"));

/// Suite-level: the full Figure 3 pipeline over all seven apps on the job
/// pool (--jobs=4 --sim-threads=2, shared generation memo) must be
/// bit-identical to the sequential reference (--jobs=1 --sim-threads=1, no
/// memo): profiles, Table 1 rows, priced Figure 3 rows, and the raw output
/// snapshots of every scheme.
TEST(SuiteDeterminismTest, JobPoolMatchesSequentialReference) {
  auto RunAt = [](unsigned Jobs, unsigned Threads, bool UseMemo) {
    MachineConfig Cfg;
    Cfg.SimThreads = Threads;
    auto Ws = workloads::buildAll(workloads::Scale::Test);
    std::vector<harness::SuiteItem> Items;
    for (auto &W : Ws)
      Items.push_back({W.get(), nullptr});
    GenerationMemo Memo;
    harness::SuiteConfig SC;
    SC.Jobs = Jobs;
    SC.SimThreads = Threads;
    SC.Memo = UseMemo ? &Memo : nullptr;
    return harness::runSuite(Items, Cfg, SC);
  };
  std::vector<harness::AppResult> Seq = RunAt(1, 1, false);
  std::vector<harness::AppResult> Par = RunAt(4, 2, true);

  ASSERT_EQ(Seq.size(), Par.size());
  MachineConfig Cfg;
  for (size_t I = 0; I != Seq.size(); ++I) {
    const harness::AppResult &A = Seq[I];
    const harness::AppResult &B = Par[I];
    EXPECT_EQ(A.Name, B.Name) << "suite order must follow item order";
    EXPECT_TRUE(A.OutputsMatch) << A.Name;
    EXPECT_TRUE(B.OutputsMatch) << B.Name;
    expectProfilesEqual(A.Cae, B.Cae);
    expectProfilesEqual(A.Manual, B.Manual);
    expectProfilesEqual(A.Auto, B.Auto);
    EXPECT_EQ(A.CaeOutputs, B.CaeOutputs) << A.Name;
    EXPECT_EQ(A.ManualOutputs, B.ManualOutputs) << A.Name;
    EXPECT_EQ(A.AutoOutputs, B.AutoOutputs) << A.Name;
    EXPECT_EQ(A.Row.AffineLoops, B.Row.AffineLoops) << A.Name;
    EXPECT_EQ(A.Row.TotalLoops, B.Row.TotalLoops) << A.Name;
    EXPECT_EQ(A.Row.NumTasks, B.Row.NumTasks) << A.Name;
    EXPECT_EQ(A.Row.AccessTimePercent, B.Row.AccessTimePercent) << A.Name;
    EXPECT_EQ(A.Row.AccessTimeUs, B.Row.AccessTimeUs) << A.Name;
    for (double Latency : {500.0, 0.0}) {
      harness::Fig3Row RA = harness::priceFig3(A, Cfg, Latency);
      harness::Fig3Row RB = harness::priceFig3(B, Cfg, Latency);
      for (int M = 0; M != 3; ++M) {
        EXPECT_EQ(RA.CaeOpt[M], RB.CaeOpt[M]) << A.Name;
        EXPECT_EQ(RA.ManualMinMax[M], RB.ManualMinMax[M]) << A.Name;
        EXPECT_EQ(RA.ManualOpt[M], RB.ManualOpt[M]) << A.Name;
        EXPECT_EQ(RA.AutoMinMax[M], RB.AutoMinMax[M]) << A.Name;
        EXPECT_EQ(RA.AutoOpt[M], RB.AutoOpt[M]) << A.Name;
      }
    }
  }
}

} // namespace
