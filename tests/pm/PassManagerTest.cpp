//===- tests/pm/PassManagerTest.cpp - Pass/analysis manager tests ----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The pass/analysis manager contract: analysis results are cached per
// (function, analysis); a mutating pass (empty PreservedAnalyses) drops the
// cache and forces recomputation; a no-op pass (all preserved) keeps cached
// results pointer-identical; invalidating LoopInfo cascades to the cached
// ScalarEvolution that references it; and fixpoint pipelines terminate —
// both by reaching a steady state and by the iteration cap.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "analysis/ScalarEvolution.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "passes/Passes.h"
#include "pm/Analyses.h"
#include "pm/Pass.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::ir;

namespace {

/// A task with one counted loop and one load (enough for every analysis).
struct LoopFixture {
  Module M;
  Function *F;

  LoopFixture() {
    auto *G = M.createGlobal("g", 8192);
    F = M.createFunction("f", Type::Void, {Type::Int64});
    F->setTask(true);
    IRBuilder B(M, F->createBlock("entry"));
    emitCountedLoop(B, B.getInt(0), F->getArg(0), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
                      Value *P = B.createGep1D(G, I, 8);
                      B.createStore(B.createLoad(Type::Int64, P), P);
                    });
    B.createRet();
  }
};

/// Counts how often it computes, for cache assertions.
struct CountingAnalysis {
  struct Result {
    unsigned Serial = 0;
  };
  static inline pm::AnalysisKey Key;
  static const char *name() { return "counting"; }
  static std::vector<const pm::AnalysisKey *> dependencies() { return {}; }
  static inline unsigned Computes = 0;
  static Result run(Function &, pm::FunctionAnalysisManager &) {
    return Result{++Computes};
  }
};

/// Pass that touches nothing and says so.
struct NoOpPass : pm::FunctionPass {
  const char *name() const override { return "noop"; }
  pm::PreservedAnalyses run(Function &,
                            pm::FunctionAnalysisManager &) override {
    return pm::PreservedAnalyses::all();
  }
};

/// Pass that claims to have changed the function (preserving nothing).
struct ClobberPass : pm::FunctionPass {
  const char *name() const override { return "clobber"; }
  pm::PreservedAnalyses run(Function &,
                            pm::FunctionAnalysisManager &) override {
    return pm::PreservedAnalyses::none();
  }
};

/// Claims change forever: exercises the fixpoint iteration cap.
struct NeverConvergesPass : pm::FunctionPass {
  const char *name() const override { return "neverconverges"; }
  pm::PreservedAnalyses run(Function &,
                            pm::FunctionAnalysisManager &) override {
    return pm::PreservedAnalyses::none();
  }
};

TEST(AnalysisManagerTest, SecondQueryHitsTheCache) {
  LoopFixture Fx;
  pm::FunctionAnalysisManager FAM;
  CountingAnalysis::Computes = 0;
  auto &R1 = FAM.getResult<CountingAnalysis>(*Fx.F);
  auto &R2 = FAM.getResult<CountingAnalysis>(*Fx.F);
  EXPECT_EQ(CountingAnalysis::Computes, 1u);
  EXPECT_EQ(&R1, &R2) << "cached result must be returned by reference";

  // Real analyses cache the same way.
  auto &LI1 = FAM.getResult<pm::LoopAnalysis>(*Fx.F);
  auto &LI2 = FAM.getResult<pm::LoopAnalysis>(*Fx.F);
  EXPECT_EQ(&LI1, &LI2);
  EXPECT_EQ(LI1.loops().size(), 1u);
}

TEST(AnalysisManagerTest, CachesPerFunction) {
  LoopFixture Fx1, Fx2;
  pm::FunctionAnalysisManager FAM;
  CountingAnalysis::Computes = 0;
  FAM.getResult<CountingAnalysis>(*Fx1.F);
  FAM.getResult<CountingAnalysis>(*Fx2.F);
  EXPECT_EQ(CountingAnalysis::Computes, 2u);
  FAM.getResult<CountingAnalysis>(*Fx1.F);
  EXPECT_EQ(CountingAnalysis::Computes, 2u);
}

TEST(AnalysisManagerTest, MutatingPassForcesRecompute) {
  LoopFixture Fx;
  pm::FunctionAnalysisManager FAM;
  CountingAnalysis::Computes = 0;
  unsigned First = FAM.getResult<CountingAnalysis>(*Fx.F).Serial;

  pm::PassManager PM("test");
  PM.add<ClobberPass>();
  pm::PreservedAnalyses PA = PM.run(*Fx.F, FAM);
  EXPECT_FALSE(PA.areAllPreserved());

  unsigned Second = FAM.getResult<CountingAnalysis>(*Fx.F).Serial;
  EXPECT_EQ(CountingAnalysis::Computes, 2u);
  EXPECT_NE(First, Second);
}

TEST(AnalysisManagerTest, NoOpPassKeepsCachedLoopInfoPointerIdentical) {
  LoopFixture Fx;
  pm::FunctionAnalysisManager FAM;
  analysis::LoopInfo *Before = &FAM.getResult<pm::LoopAnalysis>(*Fx.F);

  pm::PassManager PM("test");
  PM.add<NoOpPass>();
  pm::PreservedAnalyses PA = PM.run(*Fx.F, FAM);
  EXPECT_TRUE(PA.areAllPreserved());

  analysis::LoopInfo *After = &FAM.getResult<pm::LoopAnalysis>(*Fx.F);
  EXPECT_EQ(Before, After);
}

TEST(AnalysisManagerTest, SelectivePreservationKeepsOnlyTheClaimed) {
  LoopFixture Fx;
  pm::FunctionAnalysisManager FAM;
  CountingAnalysis::Computes = 0;
  FAM.getResult<CountingAnalysis>(*Fx.F);
  analysis::LoopInfo *LI = &FAM.getResult<pm::LoopAnalysis>(*Fx.F);

  pm::PreservedAnalyses PA = pm::PreservedAnalyses::none();
  PA.preserve<pm::LoopAnalysis>();
  FAM.invalidate(*Fx.F, PA);

  EXPECT_EQ(&FAM.getResult<pm::LoopAnalysis>(*Fx.F), LI);
  FAM.getResult<CountingAnalysis>(*Fx.F);
  EXPECT_EQ(CountingAnalysis::Computes, 2u) << "unclaimed analysis recomputed";
}

TEST(AnalysisManagerTest, InvalidatingLoopInfoCascadesToScalarEvolution) {
  LoopFixture Fx;
  pm::FunctionAnalysisManager FAM;
  analysis::ScalarEvolution *SE =
      &FAM.getResult<pm::ScalarEvolutionAnalysis>(*Fx.F);
  EXPECT_EQ(&SE->getLoopInfo(), FAM.getCachedResult<pm::LoopAnalysis>(*Fx.F))
      << "cached SE must reference the cached LoopInfo";

  // Preserve ScalarEvolution but not LoopInfo: the dependency edge must
  // drop SE anyway, or it would dangle.
  pm::PreservedAnalyses PA = pm::PreservedAnalyses::none();
  PA.preserve<pm::ScalarEvolutionAnalysis>();
  FAM.invalidate(*Fx.F, PA);
  EXPECT_EQ(FAM.getCachedResult<pm::ScalarEvolutionAnalysis>(*Fx.F), nullptr);
  EXPECT_EQ(FAM.getCachedResult<pm::LoopAnalysis>(*Fx.F), nullptr);
}

TEST(PassManagerTest, FixpointTerminatesOnRealCleanup) {
  Module M;
  auto *G = M.createGlobal("g", 8192);
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  // Foldable chain: the first sweep folds, the second sweep proves quiet.
  Value *Dead = B.createAdd(B.getInt(2), B.getInt(3));
  Value *Folded = B.createMul(Dead, B.getInt(1));
  B.createStore(Folded, B.createGep1D(G, B.getInt(0), 8));
  B.createRet();

  pm::FunctionAnalysisManager FAM;
  auto Pipeline = passes::buildO3Pipeline();
  Pipeline->run(*F, FAM);
  EXPECT_TRUE(verifyFunction(*F).empty());

  // Running the (idempotent) pipeline again changes nothing.
  pm::PreservedAnalyses PA = Pipeline->run(*F, FAM);
  EXPECT_TRUE(PA.areAllPreserved());
}

TEST(PassManagerTest, FixpointIterationCapStopsNonConvergingPipelines) {
  LoopFixture Fx;
  pm::FunctionAnalysisManager FAM;
  pm::FixpointPassManager Fix("spin", /*MaxIterations=*/5);
  Fix.add<NeverConvergesPass>();
  pm::PreservedAnalyses PA = Fix.run(*Fx.F, FAM);
  EXPECT_FALSE(PA.areAllPreserved());
  EXPECT_EQ(Fix.lastIterations(), 5u);
}

TEST(PassManagerTest, FixpointStopsAfterOneCleanSweep) {
  LoopFixture Fx;
  pm::FunctionAnalysisManager FAM;
  pm::FixpointPassManager Fix("clean");
  Fix.add<NoOpPass>();
  Fix.run(*Fx.F, FAM);
  EXPECT_EQ(Fix.lastIterations(), 1u);
}

} // namespace
