//===- tests/harness/JobPoolTest.cpp - Suite job pool tests -----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/JobPool.h"

#include <gtest/gtest.h>

#include <atomic>

using namespace dae::harness;

namespace {

TEST(JobPoolTest, EffectiveSimThreadsSplitsBudget) {
  // 16 host threads over 4 jobs: 4 threads each, clamped by the request.
  EXPECT_EQ(JobPool::effectiveSimThreads(4, 8, 16), 4u);
  EXPECT_EQ(JobPool::effectiveSimThreads(4, 2, 16), 2u);
  // Single job passes the request through untouched.
  EXPECT_EQ(JobPool::effectiveSimThreads(1, 8, 2), 8u);
}

TEST(JobPoolTest, EffectiveSimThreadsSurvivesZeroBudget) {
  // hardware_concurrency() may report 0 ("not computable"): the clamp must
  // neither divide by zero nor hand out a zero allowance.
  EXPECT_EQ(JobPool::effectiveSimThreads(4, 8, 0), 1u);
  EXPECT_EQ(JobPool::effectiveSimThreads(1, 8, 0), 8u);
  // Degenerate inputs are pinned to at least one job / one thread.
  EXPECT_EQ(JobPool::effectiveSimThreads(0, 0, 0), 1u);
  EXPECT_GE(JobPool::effectiveSimThreads(8, 4, 2), 1u);
}

TEST(JobPoolTest, HostThreadBudgetIsNeverZero) {
  EXPECT_GE(JobPool::hostThreadBudget(), 1u);
}

TEST(JobPoolTest, RunsSubmittedJobsToCompletion) {
  JobPool Pool(2, 1);
  std::atomic<int> Count{0};
  for (int I = 0; I != 32; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 32);
  // Nested submission (a job fanning out more jobs) also drains.
  Pool.submit([&] {
    for (int I = 0; I != 4; ++I)
      Pool.submit([&Count] { ++Count; });
  });
  Pool.wait();
  EXPECT_EQ(Count.load(), 36);
}

} // namespace
