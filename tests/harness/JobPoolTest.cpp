//===- tests/harness/JobPoolTest.cpp - Suite job pool tests -----------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "harness/JobPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>

using namespace dae::harness;

namespace {

TEST(JobPoolTest, EffectiveSimThreadsSplitsBudget) {
  // 16 host threads over 4 jobs: 4 threads each, clamped by the request.
  EXPECT_EQ(JobPool::effectiveSimThreads(4, 8, 16), 4u);
  EXPECT_EQ(JobPool::effectiveSimThreads(4, 2, 16), 2u);
  // Single job passes the request through untouched.
  EXPECT_EQ(JobPool::effectiveSimThreads(1, 8, 2), 8u);
}

TEST(JobPoolTest, EffectiveSimThreadsSurvivesZeroBudget) {
  // hardware_concurrency() may report 0 ("not computable"): the clamp must
  // neither divide by zero nor hand out a zero allowance.
  EXPECT_EQ(JobPool::effectiveSimThreads(4, 8, 0), 1u);
  EXPECT_EQ(JobPool::effectiveSimThreads(1, 8, 0), 8u);
  // Degenerate inputs are pinned to at least one job / one thread.
  EXPECT_EQ(JobPool::effectiveSimThreads(0, 0, 0), 1u);
  EXPECT_GE(JobPool::effectiveSimThreads(8, 4, 2), 1u);
}

TEST(JobPoolTest, HostThreadBudgetIsNeverZero) {
  EXPECT_GE(JobPool::hostThreadBudget(), 1u);
}

TEST(JobPoolTest, RunsSubmittedJobsToCompletion) {
  JobPool Pool(2, 1);
  std::atomic<int> Count{0};
  for (int I = 0; I != 32; ++I)
    Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 32);
  // Nested submission (a job fanning out more jobs) also drains.
  Pool.submit([&] {
    for (int I = 0; I != 4; ++I)
      Pool.submit([&Count] { ++Count; });
  });
  Pool.wait();
  EXPECT_EQ(Count.load(), 36);
}

TEST(JobPoolTest, HostThreadBudgetHonorsValidEnv) {
  setenv("DAECC_HOST_THREADS", "3", 1);
  EXPECT_EQ(JobPool::hostThreadBudget(), 3u);
  unsetenv("DAECC_HOST_THREADS");
}

TEST(JobPoolDeathTest, GarbageHostThreadsEnvIsAHardError) {
  // atoi used to read DAECC_HOST_THREADS=8x as 8 and =x as 0 — a sweep that
  // typo'd its budget silently ran with a different one. Now it is the same
  // exit-2 contract as every DAECC_* integer knob.
  for (const char *Bad : {"8x", "x", "", "-2", "0"}) {
    EXPECT_EXIT(
        {
          setenv("DAECC_HOST_THREADS", Bad, 1);
          (void)JobPool::hostThreadBudget();
          std::exit(0);
        },
        ::testing::ExitedWithCode(2), "invalid DAECC_HOST_THREADS value")
        << "value: '" << Bad << "'";
  }
  unsetenv("DAECC_HOST_THREADS");
}

TEST(JobPoolTest, AlwaysThreadedDrainsWithoutWait) {
  // A long-lived service submits jobs but never calls wait(); with the
  // default Jobs==1 inline drain those jobs would sit in the queue forever.
  // AlwaysThreaded spawns the worker even at one job.
  JobPool Pool(1, 1, /*AlwaysThreaded=*/true);
  std::atomic<int> Count{0};
  for (int I = 0; I != 8; ++I)
    Pool.submit([&Count] { ++Count; });
  for (int Spin = 0; Count.load() != 8 && Spin != 2000; ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(Count.load(), 8);
  // wait() still works on the threaded pool.
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 9);
}

} // namespace
