//===- tests/integration/SnapshotTest.cpp - Golden result snapshots --------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Bit-exact golden snapshots of the full pipeline: for every workload at
// test scale, the generated access-phase IR text and the three scheme
// RunProfiles must hash to the values captured from the tree before the
// pass/analysis-manager refactor. This pins "the compilation pipeline
// refactor changed no generated code and no simulated cycle" as a testable
// property; any intentional change to generation or simulation must update
// these constants (rebuild them by hashing as below and pasting the new
// values).
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "ir/Printer.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace dae;

namespace {

std::uint64_t fnv1a(const void *Data, size_t Len, std::uint64_t H) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= 1099511628211ull;
  }
  return H;
}

std::uint64_t hashU64(std::uint64_t V, std::uint64_t H) {
  return fnv1a(&V, sizeof V, H);
}

std::uint64_t hashDouble(double D, std::uint64_t H) {
  std::uint64_t Bits;
  std::memcpy(&Bits, &D, sizeof Bits);
  return hashU64(Bits, H);
}

std::uint64_t hashStats(const sim::PhaseStats &S, std::uint64_t H) {
  H = hashU64(S.Instructions, H);
  H = hashDouble(S.ComputeCycles, H);
  H = hashDouble(S.StallNs, H);
  H = hashU64(S.Loads, H);
  H = hashU64(S.Stores, H);
  H = hashU64(S.Prefetches, H);
  H = hashU64(S.L1Hits, H);
  H = hashU64(S.L2Hits, H);
  H = hashU64(S.LLCHits, H);
  H = hashU64(S.MemAccesses, H);
  return H;
}

std::uint64_t hashProfile(const runtime::RunProfile &P) {
  std::uint64_t H = 1469598103934665603ull;
  H = hashU64(P.NumCores, H);
  H = hashU64(P.Tasks.size(), H);
  for (const runtime::TaskProfile &T : P.Tasks) {
    H = hashU64(T.Core, H);
    H = hashU64(T.Wave, H);
    H = hashU64(T.HasAccess ? 1 : 0, H);
    H = hashStats(T.Access, H);
    H = hashStats(T.Execute, H);
  }
  return H;
}

/// Strategy ordinal + printed text of every generated access phase, in task
/// order.
std::uint64_t hashGeneratedIr(const harness::AppResult &R) {
  std::uint64_t H = 1469598103934665603ull;
  for (const AccessPhaseResult &G : R.Generation) {
    H = hashU64(static_cast<std::uint64_t>(G.Strategy), H);
    if (G.AccessFn) {
      std::string Text = ir::printFunction(*G.AccessFn);
      H = fnv1a(Text.data(), Text.size(), H);
    }
  }
  return H;
}

struct Golden {
  const char *Name;
  std::uint64_t AccessIr;
  std::uint64_t Cae;
  std::uint64_t Manual;
  std::uint64_t Auto;
};

// Captured from the seed tree (commit 484aab9, default MachineConfig,
// Scale::Test) before the pm:: refactor landed.
const Golden Goldens[] = {
    {"lu", 0x138e279c1b49a671ull, 0xefb666de623da035ull,
     0x108d4f99889b2ef9ull, 0x5873394210259864ull},
    {"cholesky", 0xfaca2f24faa39c44ull, 0x5e3b4f98b3d714e8ull,
     0x20c3e3b7fceb7fa6ull, 0x78df0fa092c6f986ull},
    {"fft", 0x76fd5fd3fd4b9d94ull, 0x11c4d57d5d2824b6ull,
     0xa7ec2a8a9ba62a85ull, 0x70e541f9f8da322full},
    {"lbm", 0x97ca5b4446082513ull, 0x024dd79ce1dee455ull,
     0xc0de6aa7168953fcull, 0x0a493a30f936ee50ull},
    {"libq", 0xb9b1bd29e37feaafull, 0xf032ab375633f9fbull,
     0x5f29b3dc2ef064bfull, 0xc6f447dc75555c2full},
    {"cigar", 0xdc95692b1d412aceull, 0xcaa6d7b8f7a853d7ull,
     0x247fa5f308e9ca40ull, 0xef57fded0ebb6137ull},
    {"cg", 0x23126e173bbab542ull, 0x06b894ac70c8502bull,
     0x124567a04a8c8afeull, 0x92b595c7fae62250ull},
};

class SnapshotTest : public ::testing::TestWithParam<Golden> {};

TEST_P(SnapshotTest, MatchesPreRefactorPipeline) {
  const Golden &G = GetParam();
  auto W = workloads::buildByName(G.Name, workloads::Scale::Test);
  ASSERT_NE(W, nullptr);
  sim::MachineConfig Cfg;
  harness::AppResult R = harness::runApp(*W, Cfg);
  EXPECT_TRUE(R.OutputsMatch);
  EXPECT_EQ(hashGeneratedIr(R), G.AccessIr) << "generated access-phase IR";
  EXPECT_EQ(hashProfile(R.Cae), G.Cae) << "CAE profile";
  EXPECT_EQ(hashProfile(R.Manual), G.Manual) << "Manual DAE profile";
  EXPECT_EQ(hashProfile(R.Auto), G.Auto) << "Auto DAE profile";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SnapshotTest,
                         ::testing::ValuesIn(Goldens),
                         [](const ::testing::TestParamInfo<Golden> &Info) {
                           return std::string(Info.param.Name);
                         });

} // namespace
