//===- tests/integration/WorkloadPipelineTest.cpp - End-to-end tests ------===//
//
// Part of daecc. Distributed under the MIT license.
//
// Full-pipeline checks per workload at Test scale: access generation picks
// the expected strategy, all three schemes (CAE / Manual / Auto DAE) produce
// bit-identical outputs (the access phase is a pure prefetch), and the DAE
// profiles show the expected structure (prefetch traffic in the access
// phase, fewer execute-phase memory stalls than CAE).
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"

#include "analysis/TaskAnalysis.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::harness;
using namespace dae::workloads;

namespace {

sim::MachineConfig testMachine() {
  sim::MachineConfig Cfg;
  return Cfg;
}

struct PipelineCase {
  const char *Name;
  analysis::TaskClass ExpectedStrategy;
};

class WorkloadPipelineTest : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(WorkloadPipelineTest, EndToEnd) {
  PipelineCase C = GetParam();
  auto W = buildByName(C.Name, Scale::Test);
  ASSERT_TRUE(W) << "unknown workload " << C.Name;
  sim::MachineConfig Cfg = testMachine();

  AppResult R = runApp(*W, Cfg);

  // Every task function must receive an access phase of the right kind.
  ASSERT_FALSE(R.Generation.empty());
  for (const AccessPhaseResult &G : R.Generation) {
    EXPECT_TRUE(G.succeeded()) << W->Name << ": " << G.Notes;
    EXPECT_EQ(G.Strategy, C.ExpectedStrategy) << W->Name << ": " << G.Notes;
  }

  // The access phase is a speculative prefetch: results must be identical
  // across CAE, Manual DAE, and Auto DAE.
  EXPECT_TRUE(R.OutputsMatch) << W->Name;

  // Profiles sane: every task ran; DAE runs carry access-phase stats.
  EXPECT_EQ(R.Cae.Tasks.size(), W->Tasks.size());
  EXPECT_EQ(R.Auto.Tasks.size(), W->Tasks.size());
  sim::PhaseStats AutoAccess = R.Auto.totalAccess();
  EXPECT_GT(AutoAccess.Prefetches, 0u) << W->Name;
  EXPECT_GT(AutoAccess.Instructions, 0u) << W->Name;

  // Prefetching must actually reduce execute-phase DRAM traffic vs CAE.
  sim::PhaseStats CaeExec = R.Cae.totalExecute();
  sim::PhaseStats AutoExec = R.Auto.totalExecute();
  EXPECT_LT(AutoExec.MemAccesses, CaeExec.MemAccesses + 1) << W->Name;

  // Table 1 row is populated.
  EXPECT_EQ(R.Row.NumTasks, W->Tasks.size());
  EXPECT_GT(R.Row.AccessTimePercent, 0.0);
  EXPECT_GT(R.Row.AccessTimeUs, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadPipelineTest,
    ::testing::Values(
        PipelineCase{"lu", analysis::TaskClass::Affine},
        PipelineCase{"cholesky", analysis::TaskClass::Affine},
        PipelineCase{"fft", analysis::TaskClass::Skeleton},
        PipelineCase{"lbm", analysis::TaskClass::Skeleton},
        PipelineCase{"libq", analysis::TaskClass::Skeleton},
        PipelineCase{"cigar", analysis::TaskClass::Skeleton},
        PipelineCase{"cg", analysis::TaskClass::Skeleton}),
    [](const ::testing::TestParamInfo<PipelineCase> &Info) {
      return std::string(Info.param.Name);
    });

TEST(HarnessTest, Fig3PricingIsNormalized) {
  auto W = buildByName("libq", Scale::Test);
  sim::MachineConfig Cfg = testMachine();
  AppResult R = runApp(*W, Cfg);
  Fig3Row Row = priceFig3(R, Cfg, /*TransitionNs=*/500.0);
  // All values are ratios to CAE@fmax; they must be positive and bounded.
  for (const double *Cfg3 :
       {Row.CaeOpt, Row.ManualMinMax, Row.ManualOpt, Row.AutoMinMax,
        Row.AutoOpt})
    for (int I = 0; I != 3; ++I) {
      EXPECT_GT(Cfg3[I], 0.05);
      EXPECT_LT(Cfg3[I], 5.0);
    }
}

TEST(HarnessTest, Fig4SeriesCoversLadder) {
  auto W = buildByName("cholesky", Scale::Test);
  sim::MachineConfig Cfg = testMachine();
  AppResult R = runApp(*W, Cfg);
  auto Series = priceFig4(R, Cfg, Scheme::Auto, 500.0);
  ASSERT_EQ(Series.size(), Cfg.FrequenciesGHz.size());
  // Task (execute) time must shrink monotonically with frequency for the
  // compute-bound Cholesky.
  for (size_t I = 1; I < Series.size(); ++I)
    EXPECT_LT(Series[I].TaskSec, Series[I - 1].TaskSec * 1.001);
  // Prefetch time is pinned at fmin, hence constant across the sweep.
  for (size_t I = 1; I < Series.size(); ++I)
    EXPECT_NEAR(Series[I].PrefetchSec, Series[0].PrefetchSec,
                1e-12 + Series[0].PrefetchSec * 1e-9);
}

} // namespace

namespace {

TEST(ProfileGuidedTest, ColdLoadsShrinkAccessPhaseAndPreserveOutputs) {
  sim::MachineConfig Cfg;
  // Baseline auto DAE.
  auto W1 = buildByName("cg", Scale::Test);
  AppResult Base = runApp(*W1, Cfg);
  ASSERT_TRUE(Base.OutputsMatch);

  // Profile-guided: the X gather misses a lot (kept); Cases-like resident
  // streams drop out. Access-phase instruction count must not grow, and
  // results stay identical.
  auto W2 = buildByName("cg", Scale::Test);
  auto Cold = profileColdLoads(*W2, Cfg, /*MissRateThreshold=*/0.02);
  dae::DaeOptions Opts = W2->Opts;
  Opts.ColdLoads = &Cold;
  AppResult Guided = runApp(*W2, Cfg, &Opts);
  EXPECT_TRUE(Guided.OutputsMatch);
  EXPECT_LE(Guided.Auto.totalAccess().Prefetches,
            Base.Auto.totalAccess().Prefetches);
  EXPECT_LE(Guided.Auto.totalAccess().Instructions,
            Base.Auto.totalAccess().Instructions);
}

TEST(ProfileGuidedTest, AllColdLoadsStillYieldValidAccessPhase) {
  // Degenerate profile: every load is "cold". The skeleton still emits a
  // structurally valid (possibly empty) access phase and results hold.
  sim::MachineConfig Cfg;
  auto W = buildByName("libq", Scale::Test);
  std::set<const ir::Instruction *> Cold;
  for (const auto &F : W->M->functions())
    for (const auto &BB : *F)
      for (const auto &I : *BB)
        Cold.insert(I.get());
  dae::DaeOptions Opts = W->Opts;
  Opts.ColdLoads = &Cold;
  AppResult R = runApp(*W, Cfg, &Opts);
  EXPECT_TRUE(R.OutputsMatch);
  EXPECT_EQ(R.Auto.totalAccess().Prefetches, 0u);
}

} // namespace
