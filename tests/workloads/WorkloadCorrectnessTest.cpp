//===- tests/workloads/WorkloadCorrectnessTest.cpp - Numeric ground truth ---===//
//
// Part of daecc. Distributed under the MIT license.
//
// Validates the Task IR workloads against host-computed references: the
// blocked LU against an unblocked Doolittle factorization, the blocked
// LDL^T against its unblocked counterpart, and the FFT against a direct
// O(N^2) DFT — all on identical deterministic inputs. This pins down both
// the workload builders and the interpreter's arithmetic.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "support/MathUtil.h"

#include <cmath>
#include <complex>
#include <gtest/gtest.h>
#include <vector>

using namespace dae;
using namespace dae::harness;
using namespace dae::workloads;

namespace {

/// Runs the workload coupled (CAE) on fresh memory; returns the memory.
std::unique_ptr<sim::Memory> runCae(Workload &W,
                                    const sim::Loader &L) {
  sim::MachineConfig Cfg;
  auto Mem = std::make_unique<sim::Memory>();
  W.Init(*Mem, L);
  runtime::TaskRuntime RT(Cfg, *Mem, L);
  RT.execute(W.Tasks, /*RunAccess=*/false);
  return Mem;
}

TEST(WorkloadCorrectnessTest, BlockedLuMatchesDoolittle) {
  auto W = buildLu(Scale::Test);
  sim::Loader L(*W->M);

  // Host reference from the same initial matrix.
  const std::int64_t N = 32;
  std::vector<double> Ref(N * N);
  {
    sim::Memory Seed;
    W->Init(Seed, L);
    for (std::int64_t I = 0; I != N * N; ++I)
      Ref[I] = Seed.loadF64(L.baseOf("A") + static_cast<std::uint64_t>(I) * 8);
  }
  // Unblocked right-looking LU without pivoting.
  for (std::int64_t K = 0; K != N; ++K)
    for (std::int64_t I = K + 1; I != N; ++I) {
      Ref[I * N + K] /= Ref[K * N + K];
      for (std::int64_t J = K + 1; J != N; ++J)
        Ref[I * N + J] -= Ref[I * N + K] * Ref[K * N + J];
    }

  auto Mem = runCae(*W, L);
  double MaxErr = 0.0;
  for (std::int64_t I = 0; I != N * N; ++I) {
    double Got =
        Mem->loadF64(L.baseOf("A") + static_cast<std::uint64_t>(I) * 8);
    MaxErr = std::max(MaxErr, std::abs(Got - Ref[I]) /
                                  (1.0 + std::abs(Ref[I])));
  }
  EXPECT_LT(MaxErr, 1e-9);
}

TEST(WorkloadCorrectnessTest, BlockedCholeskyMatchesLdlt) {
  auto W = buildCholesky(Scale::Test);
  sim::Loader L(*W->M);
  const std::int64_t N = 32;
  std::vector<double> Ref(N * N);
  {
    sim::Memory Seed;
    W->Init(Seed, L);
    for (std::int64_t I = 0; I != N * N; ++I)
      Ref[I] = Seed.loadF64(L.baseOf("A") + static_cast<std::uint64_t>(I) * 8);
  }
  // Unblocked right-looking LDL^T on the lower triangle.
  for (std::int64_t J = 0; J != N; ++J) {
    double D = Ref[J * N + J];
    for (std::int64_t I = J + 1; I != N; ++I)
      Ref[I * N + J] /= D;
    for (std::int64_t I = J + 1; I != N; ++I)
      for (std::int64_t K = J + 1; K <= I; ++K)
        Ref[I * N + K] -= Ref[I * N + J] * Ref[K * N + J] * D;
  }

  auto Mem = runCae(*W, L);
  double MaxErr = 0.0;
  for (std::int64_t R = 0; R != N; ++R)
    for (std::int64_t C = 0; C <= R; ++C) { // Lower triangle only.
      double Got = Mem->loadF64(L.baseOf("A") +
                                static_cast<std::uint64_t>(R * N + C) * 8);
      MaxErr = std::max(MaxErr, std::abs(Got - Ref[R * N + C]) /
                                    (1.0 + std::abs(Ref[R * N + C])));
    }
  EXPECT_LT(MaxErr, 1e-9);
}

TEST(WorkloadCorrectnessTest, FftMatchesDirectDft) {
  auto W = buildFft(Scale::Test);
  sim::Loader L(*W->M);
  const std::int64_t N = 256;

  std::vector<std::complex<double>> Input(N);
  {
    sim::Memory Seed;
    W->Init(Seed, L);
    for (std::int64_t I = 0; I != N; ++I)
      Input[I] = {
          Seed.loadF64(L.baseOf("Re") + static_cast<std::uint64_t>(I) * 8),
          Seed.loadF64(L.baseOf("Im") + static_cast<std::uint64_t>(I) * 8)};
  }
  // Direct DFT.
  const double Pi = 3.14159265358979323846;
  std::vector<std::complex<double>> Ref(N);
  for (std::int64_t K = 0; K != N; ++K) {
    std::complex<double> Acc = 0.0;
    for (std::int64_t T = 0; T != N; ++T)
      Acc += Input[T] *
             std::polar(1.0, -2.0 * Pi * static_cast<double>(K * T) /
                                 static_cast<double>(N));
    Ref[K] = Acc;
  }

  auto Mem = runCae(*W, L);
  double MaxErr = 0.0;
  for (std::int64_t K = 0; K != N; ++K) {
    std::complex<double> Got = {
        Mem->loadF64(L.baseOf("Re") + static_cast<std::uint64_t>(K) * 8),
        Mem->loadF64(L.baseOf("Im") + static_cast<std::uint64_t>(K) * 8)};
    MaxErr = std::max(MaxErr, std::abs(Got - Ref[K]));
  }
  EXPECT_LT(MaxErr, 1e-6);
}

TEST(WorkloadCorrectnessTest, CgMatchesHostSpmv) {
  auto W = buildCg(Scale::Test);
  sim::Loader L(*W->M);
  const std::int64_t Rows = 2048;

  // Rebuild the CSR structure on the host from the same Init.
  sim::Memory Seed;
  W->Init(Seed, L);
  auto I64At = [&](const char *G, std::int64_t I) {
    return Seed.loadI64(L.baseOf(G) + static_cast<std::uint64_t>(I) * 8);
  };
  auto F64At = [&](const char *G, std::int64_t I) {
    return Seed.loadF64(L.baseOf(G) + static_cast<std::uint64_t>(I) * 8);
  };
  std::vector<double> Y(Rows, 0.0);
  for (std::int64_t R = 0; R != Rows; ++R) {
    double Acc = 0.0;
    for (std::int64_t J = I64At("RowPtr", R); J != I64At("RowPtr", R + 1);
         ++J)
      Acc += F64At("Vals", J) * F64At("X", I64At("Cols", J));
    Y[R] = Acc;
  }

  // The workload runs 2 identical matvec waves over constant X: wave 2
  // overwrites Y with the same result.
  auto Mem = runCae(*W, L);
  double MaxErr = 0.0;
  for (std::int64_t R = 0; R != Rows; ++R) {
    double Got =
        Mem->loadF64(L.baseOf("Y") + static_cast<std::uint64_t>(R) * 8);
    MaxErr = std::max(MaxErr, std::abs(Got - Y[R]) / (1.0 + std::abs(Y[R])));
  }
  EXPECT_LT(MaxErr, 1e-12);
}

TEST(WorkloadCorrectnessTest, LbmConservesMassOffObstacles) {
  // BGK relaxation conserves per-cell mass; bounce-back preserves it too.
  // Total mass over the interior must be conserved across a sweep.
  auto W = buildLbm(Scale::Test);
  sim::Loader L(*W->M);
  const std::int64_t H = 32, Wd = 64, Dirs = 5;

  sim::Memory Seed;
  W->Init(Seed, L);
  auto Mass = [&](sim::Memory &Mem, const char *Grid) {
    double Sum = 0.0;
    for (std::int64_t D = 0; D != Dirs; ++D)
      for (std::int64_t R = 1; R != H - 1; ++R)
        for (std::int64_t C = 1; C != Wd - 1; ++C)
          Sum += Mem.loadF64(L.baseOf(Grid) +
                             static_cast<std::uint64_t>(
                                 ((D * H + R) * Wd + C) * 8));
    return Sum;
  };
  double Before = Mass(Seed, "F0");
  auto Mem = runCae(*W, L);
  double After = Mass(*Mem, "F0"); // Two sweeps: result back in F0.
  // BGK collision and bounce-back are exactly mass-conserving per cell;
  // the only leakage is advective flux through the static border layer,
  // bounded well under 0.1% per sweep at this lattice size.
  EXPECT_NEAR(After, Before, std::abs(Before) * 1e-3);
}

} // namespace
