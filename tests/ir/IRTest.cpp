//===- tests/ir/IRTest.cpp - Task IR unit tests -----------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Cloner.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::ir;

namespace {

TEST(ModuleTest, ConstantsAreUniqued) {
  Module M;
  EXPECT_EQ(M.getInt(7), M.getInt(7));
  EXPECT_NE(M.getInt(7), M.getInt(8));
  EXPECT_EQ(M.getFloat(1.5), M.getFloat(1.5));
  EXPECT_NE(M.getFloat(1.5), M.getFloat(-1.5));
}

TEST(ModuleTest, GlobalsAndFunctionsByName) {
  Module M;
  auto *G = M.createGlobal("buf", 256);
  EXPECT_EQ(M.getGlobal("buf"), G);
  EXPECT_EQ(M.getGlobal("nope"), nullptr);
  auto *F = M.createFunction("f", Type::Void, {Type::Int64});
  EXPECT_EQ(M.getFunction("f"), F);
  F->setTask(true);
  EXPECT_EQ(M.tasks().size(), 1u);
}

TEST(UseDefTest, UsersTrackOperands) {
  Module M;
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  Value *X = F->getArg(0);
  Value *A = B.createAdd(X, M.getInt(1));
  Value *Mul = B.createMul(A, A);
  B.createRet();

  // A is used twice by Mul.
  auto *AInst = cast<Instruction>(A);
  EXPECT_EQ(AInst->users().size(), 2u);
  EXPECT_EQ(AInst->users()[0], Mul);

  // RAUW rewires both uses.
  A->replaceAllUsesWith(X);
  EXPECT_TRUE(AInst->users().empty());
  EXPECT_EQ(cast<Instruction>(Mul)->getOperand(0), X);
  EXPECT_EQ(cast<Instruction>(Mul)->getOperand(1), X);
}

TEST(BasicBlockTest, TerminatorAndSuccessors) {
  Module M;
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  IRBuilder B(M, Entry);
  Value *C = B.createCmp(CmpPred::SGT, F->getArg(0), M.getInt(0));
  B.createCondBr(C, Then, Else);
  B.setInsertBlock(Then);
  B.createRet();
  B.setInsertBlock(Else);
  B.createRet();

  EXPECT_EQ(Entry->successors().size(), 2u);
  EXPECT_EQ(Then->predecessors().size(), 1u);
  EXPECT_EQ(Then->predecessors()[0], Entry);
  EXPECT_NE(Entry->getTerminator(), nullptr);
}

TEST(VerifierTest, AcceptsWellFormedLoop) {
  Module M;
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  emitCountedLoop(B, B.getInt(0), F->getArg(0), B.getInt(1), "i",
                  [&](IRBuilder &, Value *) {});
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
}

TEST(VerifierTest, FlagsMissingTerminator) {
  Module M;
  Function *F = M.createFunction("f", Type::Void, {});
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(M, BB);
  B.createAdd(M.getInt(1), M.getInt(2));
  auto Problems = verifyFunction(*F);
  ASSERT_FALSE(Problems.empty());
  EXPECT_NE(Problems[0].find("terminator"), std::string::npos);
}

TEST(VerifierTest, FlagsTypeMismatch) {
  Module M;
  Function *F = M.createFunction("f", Type::Void, {Type::Float64});
  IRBuilder B(M, F->createBlock("entry"));
  // Integer add of a float argument.
  B.createAdd(F->getArg(0), M.getInt(1));
  B.createRet();
  EXPECT_FALSE(verifyFunction(*F).empty());
}

TEST(VerifierTest, FlagsCrossFunctionOperand) {
  Module M;
  Function *F1 = M.createFunction("f1", Type::Void, {Type::Int64});
  Function *F2 = M.createFunction("f2", Type::Void, {});
  {
    IRBuilder B(M, F1->createBlock("entry"));
    B.createRet();
  }
  BasicBlock *Entry2 = F2->createBlock("entry");
  IRBuilder B(M, Entry2);
  Value *Bad = B.createAdd(F1->getArg(0), M.getInt(1)); // Foreign argument.
  B.createRet();
  EXPECT_FALSE(verifyFunction(*F2).empty());
  // Unhook the illegal cross-function use before module teardown.
  Entry2->erase(cast<Instruction>(Bad));
}

TEST(ClonerTest, DeepCopiesLoops) {
  Module M;
  auto *G = M.createGlobal("g", 4096);
  Function *F = M.createFunction("orig", Type::Void, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  emitCountedLoop(B, B.getInt(0), F->getArg(0), B.getInt(1), "i",
                  [&](IRBuilder &B, Value *I) {
                    Value *P = B.createGep1D(G, I, 8);
                    B.createStore(B.createCast(CastOp::SIToFP, I), P);
                  });
  B.createRet();

  auto Clone = cloneFunction(*F, "copy");
  EXPECT_EQ(Clone->getName(), "copy");
  EXPECT_EQ(Clone->size(), F->size());
  EXPECT_EQ(Clone->instructionCount(), F->instructionCount());
  EXPECT_TRUE(verifyFunction(*Clone).empty()) << printFunction(*Clone);

  // Clone shares no instructions with the original.
  for (const auto &BB : *Clone)
    for (const auto &I : *BB)
      EXPECT_EQ(I->getFunction(), Clone.get());
}

TEST(PrinterTest, RendersRoundTrippableText) {
  Module M;
  auto *G = M.createGlobal("data", 64);
  Function *F = M.createFunction("show", Type::Void, {Type::Int64});
  F->setTask(true);
  IRBuilder B(M, F->createBlock("entry"));
  Value *P = B.createGep1D(G, F->getArg(0), 8);
  Value *V = B.createLoad(Type::Float64, P);
  B.createStore(B.createFMul(V, B.getFloat(2.0)), P);
  B.createPrefetch(P);
  B.createRet();

  std::string Text = printFunction(*F);
  EXPECT_NE(Text.find("task @show"), std::string::npos);
  EXPECT_NE(Text.find("gep @data"), std::string::npos);
  EXPECT_NE(Text.find("load f64"), std::string::npos);
  EXPECT_NE(Text.find("prefetch"), std::string::npos);
  EXPECT_NE(Text.find("fmul"), std::string::npos);
}

TEST(GepTest, StrideComputation) {
  Module M;
  auto *G = M.createGlobal("a", 1 << 20);
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  GepInst *Gep = B.createGep(G, {F->getArg(0), F->getArg(0), F->getArg(0)},
                             {0, 16, 32}, 8);
  B.createRet();
  EXPECT_EQ(Gep->getIndexStride(2), 8);
  EXPECT_EQ(Gep->getIndexStride(1), 8 * 32);
  EXPECT_EQ(Gep->getIndexStride(0), 8 * 32 * 16);
}

TEST(PhiTest, RemoveIncomingKeepsConsistency) {
  Module M;
  Function *F = M.createFunction("f", Type::Int64, {Type::Int64});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *A = F->createBlock("a");
  BasicBlock *BBlk = F->createBlock("b");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(M, Entry);
  Value *C = B.createCmp(CmpPred::SGT, F->getArg(0), M.getInt(0));
  B.createCondBr(C, A, BBlk);
  B.setInsertBlock(A);
  B.createBr(Join);
  B.setInsertBlock(BBlk);
  B.createBr(Join);
  B.setInsertBlock(Join);
  PhiInst *Phi = B.createPhi(Type::Int64);
  Phi->addIncoming(M.getInt(1), A);
  Phi->addIncoming(M.getInt(2), BBlk);
  B.createRet(Phi);

  EXPECT_TRUE(verifyFunction(*F).empty());
  Phi->removeIncoming(0);
  EXPECT_EQ(Phi->getNumIncoming(), 1u);
  EXPECT_EQ(Phi->getIncomingBlock(0), BBlk);
  EXPECT_EQ(cast<ConstantInt>(Phi->getIncomingValue(0))->getValue(), 2);
}

} // namespace
