//===- tests/analysis/AnalysisTest.cpp - Analysis unit tests ---------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dominators.h"
#include "analysis/LoopInfo.h"
#include "analysis/ScalarEvolution.h"
#include "analysis/TaskAnalysis.h"
#include "ir/IRBuilder.h"
#include "pm/Analyses.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::analysis;
using namespace dae::ir;

namespace {

/// Builds: entry -> [2-deep triangular loop nest with a 2-D access] -> ret.
struct NestFixture {
  Module M;
  Function *F;
  GlobalVariable *A;
  Value *OuterIV = nullptr;
  Value *InnerIV = nullptr;
  Instruction *TheLoad = nullptr;

  NestFixture() {
    A = M.createGlobal("A", 64 * 64 * 8);
    F = M.createFunction("nest", Type::Void, {Type::Int64});
    F->setTask(true);
    IRBuilder B(M, F->createBlock("entry"));
    Value *N = F->getArg(0);
    emitCountedLoop(B, B.getInt(0), N, B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      OuterIV = I;
      Value *IP1 = B.createAdd(I, B.getInt(1));
      emitCountedLoop(B, IP1, N, B.getInt(1), "j",
                      [&](IRBuilder &B, Value *J) {
        InnerIV = J;
        Value *P = B.createGep2D(A, J, I, 64, 8);
        TheLoad = B.createLoad(Type::Float64, P);
        B.createStore(B.createFAdd(cast<LoadInst>(TheLoad), B.getFloat(1.0)),
                      P);
      });
    });
    B.createRet();
  }
};

TEST(DominatorsTest, EntryDominatesEverything) {
  NestFixture Fx;
  pm::FunctionAnalysisManager FAM;
  DominatorTree &DT = FAM.getResult<pm::DominatorsAnalysis>(*Fx.F);
  BasicBlock *Entry = Fx.F->getEntry();
  for (const auto &BB : *Fx.F) {
    EXPECT_TRUE(DT.dominates(Entry, BB.get()));
    EXPECT_TRUE(DT.dominates(BB.get(), BB.get())) << "reflexive";
  }
}

TEST(DominatorsTest, BodyDoesNotDominateExit) {
  NestFixture Fx;
  pm::FunctionAnalysisManager FAM;
  DominatorTree &DT = FAM.getResult<pm::DominatorsAnalysis>(*Fx.F);
  BasicBlock *InnerBody = cast<Instruction>(Fx.TheLoad)->getParent();
  // The function's single return block:
  BasicBlock *Ret = nullptr;
  for (const auto &BB : *Fx.F)
    if (BB->getTerminator() && isa<RetInst>(BB->getTerminator()))
      Ret = BB.get();
  ASSERT_NE(Ret, nullptr);
  EXPECT_FALSE(DT.dominates(InnerBody, Ret));
}

TEST(PostDominatorsTest, JoinPostDominatesBranch) {
  Module M;
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Join = F->createBlock("join");
  IRBuilder B(M, Entry);
  Value *C = B.createCmp(CmpPred::SGT, F->getArg(0), M.getInt(0));
  B.createCondBr(C, Then, Join);
  B.setInsertBlock(Then);
  B.createBr(Join);
  B.setInsertBlock(Join);
  B.createRet();

  pm::FunctionAnalysisManager FAM;
  PostDominatorTree &PDT = FAM.getResult<pm::PostDominatorsAnalysis>(*F);
  EXPECT_EQ(PDT.ipdom(Entry), Join);
  EXPECT_TRUE(PDT.postDominates(Join, Entry));
  EXPECT_FALSE(PDT.postDominates(Then, Entry));
}

TEST(LoopInfoTest, FindsNestWithDepths) {
  NestFixture Fx;
  pm::FunctionAnalysisManager FAM;
  LoopInfo &LI = FAM.getResult<pm::LoopAnalysis>(*Fx.F);
  ASSERT_EQ(LI.loops().size(), 2u);
  EXPECT_EQ(LI.topLevelLoops().size(), 1u);
  Loop *Outer = LI.topLevelLoops()[0];
  ASSERT_EQ(Outer->subLoops().size(), 1u);
  Loop *Inner = Outer->subLoops()[0];
  EXPECT_EQ(Outer->getDepth(), 1u);
  EXPECT_EQ(Inner->getDepth(), 2u);
  EXPECT_EQ(LI.getLoopFor(cast<Instruction>(Fx.TheLoad)->getParent()), Inner);
}

TEST(LoopInfoTest, RecognizesCanonicalIV) {
  NestFixture Fx;
  pm::FunctionAnalysisManager FAM;
  LoopInfo &LI = FAM.getResult<pm::LoopAnalysis>(*Fx.F);
  for (const auto &L : LI.loops()) {
    EXPECT_TRUE(L->isCanonical());
    EXPECT_EQ(L->getStep(), 1);
    EXPECT_NE(L->getBound(), nullptr);
    EXPECT_NE(L->getPreheader(), nullptr);
    EXPECT_NE(L->getLatch(), nullptr);
  }
}

TEST(ScalarEvolutionTest, AffineForms) {
  NestFixture Fx;
  pm::FunctionAnalysisManager FAM;
  ScalarEvolution &SE = FAM.getResult<pm::ScalarEvolutionAnalysis>(*Fx.F);

  // The inner IV is affine with coefficient 1 on the inner loop.
  auto E = SE.getAffine(Fx.InnerIV);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->IVCoeffs.size(), 1u);
  EXPECT_TRUE(E->ParamCoeffs.empty());

  // N (the argument) is a parameter.
  auto EN = SE.getAffine(Fx.F->getArg(0));
  ASSERT_TRUE(EN.has_value());
  EXPECT_TRUE(EN->IVCoeffs.empty());
  EXPECT_EQ(EN->ParamCoeffs.size(), 1u);
}

TEST(ScalarEvolutionTest, AccessExtraction) {
  NestFixture Fx;
  pm::FunctionAnalysisManager FAM;
  ScalarEvolution &SE = FAM.getResult<pm::ScalarEvolutionAnalysis>(*Fx.F);
  auto Acc = SE.getAccess(Fx.TheLoad);
  ASSERT_TRUE(Acc.has_value());
  EXPECT_EQ(Acc->Base, Fx.A);
  EXPECT_EQ(Acc->Indices.size(), 2u);
  EXPECT_FALSE(Acc->IsWrite);
  EXPECT_EQ(Acc->ElemSize, 8);
}

TEST(ScalarEvolutionTest, TriangularBounds) {
  NestFixture Fx;
  pm::FunctionAnalysisManager FAM;
  LoopInfo &LI = FAM.getResult<pm::LoopAnalysis>(*Fx.F);
  ScalarEvolution &SE = FAM.getResult<pm::ScalarEvolutionAnalysis>(*Fx.F);
  Loop *Inner = LI.topLevelLoops()[0]->subLoops()[0];
  auto Bounds = SE.getLoopBounds(Inner);
  ASSERT_TRUE(Bounds.has_value());
  // Lower bound: i + 1 (references the outer IV).
  EXPECT_EQ(Bounds->Lower.Const, 1);
  EXPECT_EQ(Bounds->Lower.IVCoeffs.size(), 1u);
  // Upper: N.
  EXPECT_EQ(Bounds->Upper.ParamCoeffs.size(), 1u);
}

TEST(ScalarEvolutionTest, NonAffineForms) {
  Module M;
  auto *G = M.createGlobal("g", 4096);
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  F->setTask(true);
  IRBuilder B(M, F->createBlock("entry"));
  Value *N = F->getArg(0);
  // N * N is not affine; N % 7 is not affine; a loaded value is not affine.
  Value *Sq = B.createMul(N, N);
  Value *Rem = B.createSRem(N, B.getInt(7));
  Value *Ld = B.createLoad(Type::Int64, B.createGep1D(G, N, 8));
  B.createStore(B.createAdd(B.createAdd(Sq, Rem), Ld),
                B.createGep1D(G, B.getInt(0), 8));
  B.createRet();

  pm::FunctionAnalysisManager FAM;
  ScalarEvolution &SE = FAM.getResult<pm::ScalarEvolutionAnalysis>(*F);
  EXPECT_FALSE(SE.getAffine(Sq).has_value());
  EXPECT_FALSE(SE.getAffine(Rem).has_value());
  EXPECT_FALSE(SE.getAffine(Ld).has_value());
  // But N << 2 is affine (scale 4).
  IRBuilder B2(M, F->getEntry());
  // (Checked through expression algebra instead of new IR.)
  auto EN = SE.getAffine(N);
  ASSERT_TRUE(EN);
  AffineExpr Scaled = EN->scaled(4);
  EXPECT_EQ(Scaled.ParamCoeffs.begin()->second, 4);
}

TEST(TaskAnalysisTest, ClassifiesFixtures) {
  NestFixture Fx;
  pm::FunctionAnalysisManager FAM;
  const TaskClassification &Cls =
      FAM.getResult<pm::TaskClassificationAnalysis>(*Fx.F);
  EXPECT_EQ(Cls.Class, TaskClass::Affine);
  EXPECT_EQ(Cls.TotalLoops, 2u);
  EXPECT_EQ(Cls.AffineLoops, 2u);
}

TEST(AffineExprTest, Algebra) {
  AffineExpr A;
  A.Const = 3;
  AffineExpr B;
  B.Const = -3;
  AffineExpr Sum = A + B;
  EXPECT_TRUE(Sum.isConstant());
  EXPECT_EQ(Sum.Const, 0);
  EXPECT_EQ(A.scaled(0).Const, 0);
  EXPECT_EQ((A - A).Const, 0);
}

} // namespace
