//===- tests/support/SupportTest.cpp - Support library tests ---------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Format.h"
#include "support/MathUtil.h"
#include "support/Rational.h"

#include <gtest/gtest.h>

using namespace dae;

namespace {

TEST(RationalTest, NormalizesOnConstruction) {
  Rational R(6, 4);
  EXPECT_EQ(R.num(), 3);
  EXPECT_EQ(R.den(), 2);
  Rational Neg(3, -6);
  EXPECT_EQ(Neg.num(), -1);
  EXPECT_EQ(Neg.den(), 2);
}

TEST(RationalTest, Arithmetic) {
  Rational A(1, 3), B(1, 6);
  EXPECT_EQ(A + B, Rational(1, 2));
  EXPECT_EQ(A - B, Rational(1, 6));
  EXPECT_EQ(A * B, Rational(1, 18));
  EXPECT_EQ(A / B, Rational(2));
  EXPECT_EQ(-A, Rational(-1, 3));
}

TEST(RationalTest, OverflowThrowsInEveryBuildType) {
  // 2^62 * 3 overflows the reduced 64-bit magnitude; before the checked
  // narrow() this silently wrapped in Release builds and could flip the
  // hull guard's lattice-point comparison.
  Rational Big(std::int64_t(1) << 62);
  EXPECT_THROW(Big * Rational(3), RationalOverflow);
  EXPECT_THROW(Big + Big, RationalOverflow);
  // Results that reduce back into range must not throw.
  EXPECT_EQ(Big * Rational(1, 1 << 30), Rational(std::int64_t(1) << 32));
}

TEST(RationalTest, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GT(Rational(-1, 4), Rational(-1, 2));
  EXPECT_NE(Rational(1, 3), Rational(1, 4));
}

TEST(RationalTest, FloorCeil) {
  EXPECT_EQ(Rational(7, 2).floor(), 3);
  EXPECT_EQ(Rational(7, 2).ceil(), 4);
  EXPECT_EQ(Rational(-7, 2).floor(), -4);
  EXPECT_EQ(Rational(-7, 2).ceil(), -3);
  EXPECT_EQ(Rational(4).floor(), 4);
  EXPECT_EQ(Rational(4).ceil(), 4);
}

TEST(RationalTest, LargeIntermediatesCancel) {
  // (k/(k+1)) - (k-1)/k has huge cross products but a tiny result.
  std::int64_t K = 1000000007;
  Rational A(K, K + 1), B(K - 1, K);
  Rational D = A - B;
  EXPECT_EQ(D.num(), 1);
  EXPECT_EQ(D.den(), K * (K + 1));
}

TEST(RationalTest, StringForm) {
  EXPECT_EQ(Rational(3).str(), "3");
  EXPECT_EQ(Rational(-3, 7).str(), "-3/7");
}

TEST(Gcd64Test, Basics) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(0, 5), 5);
  EXPECT_EQ(gcd64(0, 0), 0);
}

TEST(GeometricMeanTest, KnownValues) {
  EXPECT_DOUBLE_EQ(geometricMean({4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(geometricMean({2.0, 2.0, 2.0}), 2.0);
  EXPECT_NEAR(geometricMean({1.0, 10.0}), 3.16227766, 1e-6);
}

TEST(SplitMixRngTest, DeterministicAndSpread) {
  SplitMixRng A(42), B(42), C(43);
  EXPECT_EQ(A.next(), B.next());
  EXPECT_NE(A.next(), C.next());
  // nextBelow stays in range.
  SplitMixRng R(7);
  for (int I = 0; I != 1000; ++I)
    EXPECT_LT(R.nextBelow(17), 17u);
  // nextDouble stays in [0, 1).
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(FormatTest, Strfmt) {
  EXPECT_EQ(strfmt("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(strfmt("%.2f", 1.5), "1.50");
  EXPECT_EQ(strfmt("plain"), "plain");
}

} // namespace
