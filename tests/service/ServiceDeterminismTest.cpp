//===- tests/service/ServiceDeterminismTest.cpp - Daemon determinism -------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The experiment daemon's load-bearing property: a served result is
// bit-identical to the same request run one-shot through harness::runApp.
// That is what makes results cacheable at all, so it is asserted payload-
// for-payload across every workload, across cache levels (miss / memory /
// disk), across a daemon restart, and after deliberate cache corruption.
// The transport (Server/Client over a Unix socket) and the failure surface
// (structured error replies, bounded-queue backpressure) ride along.
//
//===----------------------------------------------------------------------===//

#include "service/ExperimentService.h"
#include "service/ResultPayload.h"
#include "service/Server.h"

#include "harness/Harness.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <thread>
#include <unistd.h>

using namespace dae;
using namespace dae::service;

namespace {

constexpr const char *AllWorkloads[] = {"lu",   "cholesky", "fft", "lbm",
                                        "libq", "cigar",    "cg"};

std::string runRequest(const std::string &Workload) {
  return "{\"op\": \"run\", \"workload\": \"" + Workload +
         "\", \"scale\": \"test\", \"scheme\": \"all\", \"policy\": "
         "\"minmax\"}";
}

/// Sends one line to the service and parses the reply JSON.
JsonValue handle(ExperimentService &Svc, const std::string &Line,
                 unsigned Client = 0) {
  bool Shutdown = false;
  std::string Reply = Svc.handleLine(Line, Client, Shutdown);
  JsonValue V;
  std::string Err;
  EXPECT_TRUE(parseJson(Reply, V, Err)) << Err << "\nreply: " << Reply;
  return V;
}

std::string strField(const JsonValue &V, const char *Key) {
  const JsonValue *F = V.get(Key);
  return F && F->isString() ? F->Str : std::string();
}

/// The reply's "result" object re-serialized key order and all — identical
/// requests must produce identical results regardless of which cache level
/// answered, so everything except the latency field must match.
std::string resultFingerprint(const JsonValue &Reply) {
  const JsonValue *R = Reply.get("result");
  if (!R)
    return "";
  std::string Out;
  std::function<void(const JsonValue &)> Dump = [&](const JsonValue &V) {
    switch (V.K) {
    case JsonValue::Kind::Null:
      Out += "null";
      break;
    case JsonValue::Kind::Bool:
      Out += V.B ? "true" : "false";
      break;
    case JsonValue::Kind::Number:
      Out += hexDouble(V.Num);
      break;
    case JsonValue::Kind::String:
      Out += "\"" + V.Str + "\"";
      break;
    case JsonValue::Kind::Array:
      Out += "[";
      for (const JsonValue &E : V.Arr)
        Dump(E);
      Out += "]";
      break;
    case JsonValue::Kind::Object:
      Out += "{";
      for (const auto &[K, E] : V.Obj) {
        Out += K + ":";
        Dump(E);
      }
      Out += "}";
      break;
    }
  };
  Dump(*R);
  return Out;
}

class TempDir {
public:
  explicit TempDir(const char *Name)
      : Path(std::filesystem::temp_directory_path() /
             (std::string("daecc_") + Name + "_" +
              std::to_string(::getpid()))) {
    std::filesystem::remove_all(Path);
  }
  ~TempDir() { std::filesystem::remove_all(Path); }
  std::string str() const { return Path.string(); }

private:
  std::filesystem::path Path;
};

// A result served by the daemon is bit-identical to the one-shot pipeline:
// the reply's payload_fnv equals the FNV of serializeAppResult(runApp(...))
// computed inline, for every workload.
TEST(ServiceDeterminismTest, ServedEqualsOneShotForEveryWorkload) {
  ExperimentService::Config C;
  ExperimentService Svc(C);
  for (const char *Name : AllWorkloads) {
    JsonValue Reply = handle(Svc, runRequest(Name));
    ASSERT_TRUE(Reply.get("ok") && Reply.get("ok")->B) << Name;

    auto W = workloads::buildByName(Name, workloads::Scale::Test);
    ASSERT_NE(W, nullptr);
    sim::MachineConfig Cfg;
    harness::AppResult Inline = harness::runApp(*W, Cfg);
    char Want[32];
    std::snprintf(Want, sizeof(Want), "%016llx",
                  static_cast<unsigned long long>(
                      fnv1a(serializeAppResult(Inline))));
    EXPECT_EQ(strField(*Reply.get("result"), "payload_fnv"), Want) << Name;
    EXPECT_TRUE(Reply.get("result")->get("outputs_match")->B) << Name;
  }
}

// The serialized payload round-trips losslessly: pricing a deserialized
// profile gives the same hexfloat-exact numbers as pricing the original.
TEST(ServiceDeterminismTest, PayloadRoundTripsBitExactly) {
  auto W = workloads::buildByName("cholesky", workloads::Scale::Test);
  sim::MachineConfig Cfg;
  harness::AppResult R = harness::runApp(*W, Cfg, nullptr, nullptr,
                                         /*DaeVerify=*/true);
  std::string Payload = serializeAppResult(R);
  ResultRecord Rec;
  ASSERT_TRUE(deserializeResult(Payload, Rec));
  // Outputs travel as fingerprints, not bytes; they must match the
  // originals exactly.
  EXPECT_EQ(Rec.AutoOut.Bytes, R.AutoOutputs.size());
  EXPECT_EQ(Rec.AutoOut.Fnv,
            fnv1a(R.AutoOutputs.data(), R.AutoOutputs.size()));
  EXPECT_EQ(Rec.CaeOut.Fnv, Rec.ManualOut.Fnv);
  // Re-serializing the deserialized record (with the byte snapshots put
  // back) reproduces the payload verbatim — nothing else was lossy.
  Rec.App.CaeOutputs = R.CaeOutputs;
  Rec.App.ManualOutputs = R.ManualOutputs;
  Rec.App.AutoOutputs = R.AutoOutputs;
  EXPECT_EQ(serializeAppResult(Rec.App), Payload);

  runtime::EvalConfig EC = harness::minMaxConfig(Cfg, -1.0);
  runtime::RunReport A = runtime::evaluate(R.Auto, Cfg, EC);
  runtime::RunReport B = runtime::evaluate(Rec.App.Auto, Cfg, EC);
  EXPECT_EQ(A.TimeSec, B.TimeSec);
  EXPECT_EQ(A.EnergyJ, B.EnergyJ);
  EXPECT_EQ(A.EdpJs, B.EdpJs);
  EXPECT_EQ(A.NumTransitions, B.NumTransitions);
  // Verify verdicts survive too.
  EXPECT_EQ(Rec.App.AutoVerify.Ran, R.AutoVerify.Ran);
  EXPECT_EQ(Rec.App.AutoVerify.Diff.BaselineExecMisses,
            R.AutoVerify.Diff.BaselineExecMisses);
}

// Repeating a request hits the memory cache, reports it, and serves the
// identical result at a fraction of the compute latency.
TEST(ServiceDeterminismTest, RepeatHitsMemoryCacheWithIdenticalResult) {
  ExperimentService::Config C;
  ExperimentService Svc(C);
  JsonValue First = handle(Svc, runRequest("libq"));
  EXPECT_EQ(strField(First, "cache"), "miss");
  JsonValue Second = handle(Svc, runRequest("libq"));
  EXPECT_EQ(strField(Second, "cache"), "memory");
  EXPECT_EQ(resultFingerprint(First), resultFingerprint(Second));
  ASSERT_FALSE(resultFingerprint(First).empty());

  // The hit must be at least 10x faster than the compute (the issue's bar;
  // in practice it is 100-1000x). Latencies come from the service's own
  // counters so the assertion covers the instrumented path end to end.
  JsonValue Stats = handle(Svc, "{\"op\": \"stats\"}");
  const JsonValue *S = Stats.get("service");
  ASSERT_NE(S, nullptr);
  const JsonValue *Lat = S->get("latency_ms");
  double HitMean = Lat->get("hit")->get("mean")->Num;
  double MissMean = Lat->get("miss")->get("mean")->Num;
  EXPECT_GT(MissMean, 0.0);
  EXPECT_LT(HitMean, MissMean / 10.0);
  EXPECT_EQ(S->get("memory_hits")->Num, 1.0);
  EXPECT_EQ(S->get("misses")->Num, 1.0);
}

// Same compute under different pricing: the second request must reuse the
// cached simulation (pricing is excluded from the key) and still price
// differently.
TEST(ServiceDeterminismTest, PricingIsExcludedFromTheComputeKey) {
  ExperimentService::Config C;
  ExperimentService Svc(C);
  JsonValue MinMax = handle(Svc, runRequest("cigar"));
  JsonValue Stats1 = handle(Svc, "{\"op\": \"stats\"}");
  JsonValue Opt = handle(
      Svc, "{\"op\": \"run\", \"workload\": \"cigar\", \"scale\": \"test\", "
           "\"scheme\": \"all\", \"policy\": \"optimal\"}");
  EXPECT_EQ(strField(Opt, "cache"), "memory");
  // Same simulation, different policy outcome.
  EXPECT_EQ(strField(*MinMax.get("result"), "payload_fnv"),
            strField(*Opt.get("result"), "payload_fnv"));
  const JsonValue *RepA =
      MinMax.get("result")->get("reports")->get("auto");
  const JsonValue *RepB = Opt.get("result")->get("reports")->get("auto");
  EXPECT_EQ(strField(*RepA, "policy"), "minmax");
  EXPECT_EQ(strField(*RepB, "policy"), "optimal");
  (void)Stats1;
}

// Disk persistence: a fresh service instance on the same cache directory
// serves the identical result from disk; corrupting the entry afterwards is
// detected, counted, recomputed, and the rewritten entry is valid again.
TEST(ServiceDeterminismTest, DiskCacheSurvivesRestartAndCorruption) {
  TempDir Dir("svc_disk");
  std::string Fp1;
  {
    ExperimentService::Config C;
    C.CacheDir = Dir.str();
    ExperimentService Svc(C);
    JsonValue R = handle(Svc, runRequest("cg"));
    EXPECT_EQ(strField(R, "cache"), "miss");
    Fp1 = resultFingerprint(R);
    ASSERT_FALSE(Fp1.empty());
  }

  // Restart: served from disk, bit-identical.
  {
    ExperimentService::Config C;
    C.CacheDir = Dir.str();
    ExperimentService Svc(C);
    JsonValue R = handle(Svc, runRequest("cg"));
    EXPECT_EQ(strField(R, "cache"), "disk");
    EXPECT_EQ(resultFingerprint(R), Fp1);
  }

  // Corrupt the entry (truncate): next service detects it, recomputes, and
  // the result is still identical.
  std::filesystem::path Entry;
  for (const auto &E : std::filesystem::directory_iterator(Dir.str()))
    if (E.path().extension() == ".res")
      Entry = E.path();
  ASSERT_FALSE(Entry.empty());
  std::filesystem::resize_file(Entry, 10);
  {
    ExperimentService::Config C;
    C.CacheDir = Dir.str();
    ExperimentService Svc(C);
    JsonValue R = handle(Svc, runRequest("cg"));
    EXPECT_EQ(strField(R, "cache"), "miss");
    EXPECT_EQ(resultFingerprint(R), Fp1);
    JsonValue Stats = handle(Svc, "{\"op\": \"stats\"}");
    EXPECT_EQ(Stats.get("service")->get("corrupt_entries")->Num, 1.0);
  }
  // And the recompute rewrote a valid entry.
  {
    ExperimentService::Config C;
    C.CacheDir = Dir.str();
    ExperimentService Svc(C);
    JsonValue R = handle(Svc, runRequest("cg"));
    EXPECT_EQ(strField(R, "cache"), "disk");
    EXPECT_EQ(resultFingerprint(R), Fp1);
  }
}

std::string entryPathFor(const std::string &Dir, const std::string &Key) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "%016llx.res",
                static_cast<unsigned long long>(fnv1a(Key)));
  return Dir + "/" + Name;
}

// A 64-bit fingerprint collision between two distinct canonical keys must
// degrade to a miss, never serve the other request's bit-exact-looking
// payload. Simulated by copying key A's valid, checksummed disk entry onto
// the path key B's fingerprint would name: the stored canonical key no
// longer matches the lookup, so B misses while A still hits.
TEST(ServiceDeterminismTest, FingerprintCollisionIsAMissNotAWrongResult) {
  TempDir Dir("svc_coll");
  const std::string KeyA = "daecc-compute 1|lu|test|cores=1";
  const std::string KeyB = "daecc-compute 1|fft|test|cores=2";
  const std::string PayloadA = "payload-for-A";
  {
    ResultCache C(Dir.str());
    C.put(KeyA, PayloadA);
  }
  std::filesystem::copy_file(entryPathFor(Dir.str(), KeyA),
                             entryPathFor(Dir.str(), KeyB));

  ResultCache C(Dir.str());
  std::string P;
  EXPECT_EQ(C.get(KeyB, P), ResultCache::Source::Miss);
  EXPECT_TRUE(P.empty());
  // A collision is not corruption: the entry is valid for *its* key, stays
  // on disk, and key A still hits it.
  EXPECT_EQ(C.stats().CorruptEntries, 0u);
  EXPECT_EQ(C.get(KeyA, P), ResultCache::Source::Disk);
  EXPECT_EQ(P, PayloadA);
  // The promoted memory entry is keyed by the full canonical string too:
  // B still misses after A's promotion.
  P.clear();
  EXPECT_EQ(C.get(KeyB, P), ResultCache::Source::Miss);
  EXPECT_TRUE(P.empty());
}

// Entries from the keyless daecc1 format (or any other version skew) are
// corrupt, not servable: counted, removed, and recomputed — never trusted
// without a canonical-key comparison.
TEST(ServiceDeterminismTest, StaleFormatEntryIsCorruptNotServed) {
  TempDir Dir("svc_stale");
  const std::string Key = "daecc-compute 1|lu|test|cores=1";
  std::filesystem::create_directories(Dir.str());
  const std::string Path = entryPathFor(Dir.str(), Key);
  {
    std::FILE *F = std::fopen(Path.c_str(), "wb");
    ASSERT_NE(F, nullptr);
    const std::string Old = "old-format-payload";
    std::fprintf(F, "daecc1 %016llx %llu\n",
                 static_cast<unsigned long long>(fnv1a(Old)),
                 static_cast<unsigned long long>(Old.size()));
    std::fwrite(Old.data(), 1, Old.size(), F);
    std::fclose(F);
  }
  ResultCache C(Dir.str());
  std::string P;
  EXPECT_EQ(C.get(Key, P), ResultCache::Source::Miss);
  EXPECT_EQ(C.stats().CorruptEntries, 1u);
  EXPECT_FALSE(std::filesystem::exists(Path));
  // Rewriting under the current format round-trips.
  C.put(Key, "fresh");
  ResultCache C2(Dir.str());
  EXPECT_EQ(C2.get(Key, P), ResultCache::Source::Disk);
  EXPECT_EQ(P, "fresh");
}

// Every CLI exit-2 class error is a structured reply, and the daemon keeps
// serving afterwards.
TEST(ServiceDeterminismTest, MalformedRequestsGetStructuredErrors) {
  ExperimentService::Config C;
  ExperimentService Svc(C);
  auto ExpectBad = [&](const std::string &Line, const char *Code) {
    JsonValue R = handle(Svc, Line);
    ASSERT_TRUE(R.get("ok")) << Line;
    EXPECT_FALSE(R.get("ok")->B) << Line;
    EXPECT_EQ(strField(R, "code"), Code) << Line;
    EXPECT_FALSE(strField(R, "error").empty()) << Line;
  };
  ExpectBad("this is not json", "bad_request");
  ExpectBad("[1, 2, 3]", "bad_request");
  ExpectBad("{\"op\": \"fly\"}", "bad_request");
  ExpectBad("{\"op\": \"run\"}", "bad_request"); // missing workload
  ExpectBad("{\"op\": \"run\", \"workload\": \"doom\"}", "bad_request");
  ExpectBad("{\"op\": \"run\", \"workload\": \"lu\", \"scale\": \"huge\"}",
            "bad_request");
  ExpectBad("{\"op\": \"run\", \"workload\": \"lu\", \"scheme\": \"best\"}",
            "bad_request");
  ExpectBad("{\"op\": \"run\", \"workload\": \"lu\", \"policy\": \"warp\"}",
            "bad_request");
  ExpectBad("{\"op\": \"run\", \"workload\": \"lu\", \"cores\": 0}",
            "bad_request");
  ExpectBad("{\"op\": \"run\", \"workload\": \"lu\", \"cores\": 2.5}",
            "bad_request");
  ExpectBad("{\"op\": \"run\", \"workload\": \"lu\", \"big_cores\": 2}",
            "bad_request"); // little_cores missing
  ExpectBad("{\"op\": \"run\", \"workload\": \"lu\", \"turbo\": true}",
            "bad_request"); // unknown key
  ExpectBad("{\"op\": \"run\", \"workload\": \"lu\", \"options\": "
            "{\"warp\": 1}}",
            "bad_request"); // unknown knob
  ExpectBad("{\"op\": \"run\", \"workload\": \"lu\", \"transition_ns\": -5}",
            "bad_request");

  // Still alive and correct after the error volley.
  JsonValue Good = handle(Svc, runRequest("lu"));
  EXPECT_TRUE(Good.get("ok")->B);
  JsonValue Stats = handle(Svc, "{\"op\": \"stats\"}");
  EXPECT_EQ(Stats.get("service")->get("errors")->Num, 14.0);
}

// Generator-knob overrides change the compute key and the result; the same
// override twice shares one cache entry.
TEST(ServiceDeterminismTest, OptionOverridesAreKeyedSeparately) {
  ExperimentService::Config C;
  ExperimentService Svc(C);
  std::string Base = runRequest("lu");
  std::string Hull =
      "{\"op\": \"run\", \"workload\": \"lu\", \"scale\": \"test\", "
      "\"scheme\": \"all\", \"policy\": \"minmax\", \"options\": "
      "{\"convex_union\": false}}";
  JsonValue R1 = handle(Svc, Base);
  JsonValue R2 = handle(Svc, Hull);
  EXPECT_EQ(strField(R2, "cache"), "miss"); // distinct compute
  JsonValue R3 = handle(Svc, Hull);
  EXPECT_EQ(strField(R3, "cache"), "memory");
  EXPECT_EQ(resultFingerprint(R2), resultFingerprint(R3));
}

// A zero-length admission queue means immediate structured backpressure.
TEST(ServiceDeterminismTest, BoundedQueueRejectsWithBusy) {
  ExperimentService::Config C;
  C.MaxQueue = 0;
  ExperimentService Svc(C);
  JsonValue R = handle(Svc, runRequest("lu"));
  EXPECT_FALSE(R.get("ok")->B);
  EXPECT_EQ(strField(R, "code"), "busy");
  JsonValue Stats = handle(Svc, "{\"op\": \"stats\"}");
  EXPECT_EQ(Stats.get("service")->get("rejected_busy")->Num, 1.0);
}

// Concurrent identical requests coalesce onto one in-flight compute.
TEST(ServiceDeterminismTest, ConcurrentIdenticalRequestsShareTheCompute) {
  ExperimentService::Config C;
  C.Jobs = 2;
  ExperimentService Svc(C);
  std::string Fp[4];
  std::vector<std::thread> Ts;
  for (int I = 0; I != 4; ++I)
    Ts.emplace_back([&, I] {
      bool Shutdown = false;
      std::string Reply =
          Svc.handleLine(runRequest("fft"), static_cast<unsigned>(I),
                         Shutdown);
      JsonValue V;
      std::string Err;
      ASSERT_TRUE(parseJson(Reply, V, Err));
      ASSERT_TRUE(V.get("ok")->B);
      Fp[I] = resultFingerprint(V);
    });
  for (std::thread &T : Ts)
    T.join();
  for (int I = 1; I != 4; ++I)
    EXPECT_EQ(Fp[0], Fp[I]);
  // However the race resolved, at most one compute ran: every request was
  // answered by the miss itself, an attach to it, or the cache right after.
  JsonValue Stats = handle(Svc, "{\"op\": \"stats\"}");
  EXPECT_EQ(Stats.get("service")->get("misses")->Num +
                Stats.get("service")->get("memory_hits")->Num,
            4.0);
}

// A long-lived daemon must not hold one thread handle per connection ever
// accepted: finished connections retire their handle and the accept loop
// reaps it, so the tracked set converges to the open connections.
TEST(ServiceDeterminismTest, FinishedConnectionThreadsAreReaped) {
  TempDir Dir("svc_reap");
  std::filesystem::create_directories(Dir.str());
  std::string Sock = Dir.str() + "/r.sock";
  Server Srv(Sock, [](const std::string &Line, unsigned, bool &) {
    return Line; // echo — the transport is what is under test
  });
  std::string Err;
  ASSERT_TRUE(Srv.start(Err)) << Err;
  std::thread ServeThread([&] { Srv.serve(); });

  for (int I = 0; I != 8; ++I) {
    Client C;
    ASSERT_TRUE(C.connect(Sock, Err)) << Err;
    std::string Reply;
    ASSERT_TRUE(C.request("ping", Reply));
    EXPECT_EQ(Reply, "ping");
  }
  // Reaping happens on accept, and a just-closed connection's thread may
  // not have retired its handle yet — poke the accept loop until the
  // tracked set shrinks to at most the poking connection plus a straggler.
  std::size_t Tracked = 1000;
  for (int Tries = 0; Tries != 100 && Tracked > 2; ++Tries) {
    Client C;
    ASSERT_TRUE(C.connect(Sock, Err)) << Err;
    std::string Reply;
    ASSERT_TRUE(C.request("ping", Reply));
    C.close();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    Tracked = Srv.trackedThreads();
  }
  EXPECT_LE(Tracked, 2u);
  Srv.requestStop();
  ServeThread.join();
  EXPECT_EQ(Srv.trackedThreads(), 0u);
}

// Full transport round trip: daemon on a Unix socket, two clients, repeat
// request served from cache, shutdown op stops the server.
TEST(ServiceDeterminismTest, SocketRoundTripServesAndShutsDown) {
  TempDir Dir("svc_sock");
  std::filesystem::create_directories(Dir.str());
  std::string Sock = Dir.str() + "/d.sock";
  ExperimentService::Config C;
  ExperimentService Svc(C);
  Server Srv(Sock, [&](const std::string &Line, unsigned Id, bool &Down) {
    return Svc.handleLine(Line, Id, Down);
  });
  std::string Err;
  ASSERT_TRUE(Srv.start(Err)) << Err;
  std::thread ServeThread([&] { Srv.serve(); });

  Client C1, C2;
  ASSERT_TRUE(C1.connect(Sock, Err)) << Err;
  ASSERT_TRUE(C2.connect(Sock, Err)) << Err;
  std::string Reply1, Reply2;
  ASSERT_TRUE(C1.request(runRequest("lbm"), Reply1));
  ASSERT_TRUE(C2.request(runRequest("lbm"), Reply2));
  JsonValue V1, V2;
  ASSERT_TRUE(parseJson(Reply1, V1, Err));
  ASSERT_TRUE(parseJson(Reply2, V2, Err));
  EXPECT_TRUE(V1.get("ok")->B);
  EXPECT_EQ(strField(V2, "cache"), "memory");
  EXPECT_EQ(resultFingerprint(V1), resultFingerprint(V2));

  std::string Bye;
  ASSERT_TRUE(C1.request("{\"op\": \"shutdown\"}", Bye));
  EXPECT_NE(Bye.find("shutting_down"), std::string::npos);
  ServeThread.join();
  // The socket file is gone after a clean shutdown.
  EXPECT_FALSE(std::filesystem::exists(Sock));
}

} // namespace
