//===- tests/dae/GeneratorFuzzTest.cpp - Randomized generator testing -------===//
//
// Part of daecc. Distributed under the MIT license.
//
// Randomized compiler testing of the access-phase generators: for seeded
// random kernels (affine 2-D loop nests and non-affine strided/indirect
// loops), check the paper's core contract on every one:
//   (1) generation succeeds and verifies,
//   (2) running access+execute produces bit-identical results to execute
//       alone (the access phase is a pure prefetch),
//   (3) for accepted affine hulls, NOrig <= NConvUn and the prefetched set
//       covers the loads (execute-phase DRAM misses drop to zero when the
//       task working set fits the private hierarchy),
//   (4) the AccessPhaseAudit proves every generated phase prefetch-pure
//       (the static half of the verify/ oracle over the whole corpus).
//
//===----------------------------------------------------------------------===//

#include "dae/AccessGenerator.h"

#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "pm/AnalysisManager.h"
#include "sim/Interpreter.h"
#include "support/Casting.h"
#include "support/MathUtil.h"
#include "verify/AccessPhaseAudit.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::ir;

namespace {

constexpr std::int64_t Dim = 64, Elem = 8;

/// Builds a random affine kernel:
///   for i in [0, N): for j in [lo(i), hi(i)):
///     A[a1*i + b1*j + c1][a2*i + b2*j + c2] op= B[...] (all indices kept
///     inside the Dim x Dim arrays by construction).
Function *buildRandomAffine(Module &M, SplitMixRng &Rng, unsigned Id) {
  auto *A = M.getGlobal("A");
  auto *Bg = M.getGlobal("B");
  Function *F = M.createFunction("fuzz" + std::to_string(Id), Type::Void,
                                 {Type::Int64});
  F->setTask(true);
  Value *N = F->getArg(0);
  IRBuilder B(M, F->createBlock("entry"));

  // Small coefficients in {0, 1, 2} and offsets in [0, 8) keep every access
  // within a 64x64 array for N <= 16.
  auto Coef = [&]() { return static_cast<std::int64_t>(Rng.nextBelow(3)); };
  auto Off = [&]() { return static_cast<std::int64_t>(Rng.nextBelow(8)); };
  std::int64_t A1 = Coef(), B1 = Coef(), C1 = Off();
  std::int64_t A2 = Coef(), B2 = Coef(), C2 = Off();
  std::int64_t D1 = Coef(), E1 = Coef(), G1 = Off();
  bool Triangular = Rng.nextBelow(2) == 0;

  auto Lin = [&](IRBuilder &B, Value *I, Value *J, std::int64_t CI,
                 std::int64_t CJ, std::int64_t K) -> Value * {
    Value *Acc = B.getInt(K);
    if (CI)
      Acc = B.createAdd(Acc, CI == 1 ? I : B.createMul(I, B.getInt(CI)));
    if (CJ)
      Acc = B.createAdd(Acc, CJ == 1 ? J : B.createMul(J, B.getInt(CJ)));
    return Acc;
  };

  emitCountedLoop(B, B.getInt(0), N, B.getInt(1), "i", [&](IRBuilder &B,
                                                           Value *I) {
    Value *Lo = Triangular ? I : B.getInt(0);
    emitCountedLoop(B, Lo, N, B.getInt(1), "j", [&](IRBuilder &B, Value *J) {
      Value *SrcPtr = B.createGep2D(Bg, Lin(B, I, J, D1, E1, G1),
                                    Lin(B, I, J, B1, A1, C2), Dim, Elem);
      Value *DstPtr = B.createGep2D(A, Lin(B, I, J, A1, B1, C1),
                                    Lin(B, I, J, A2, B2, C2), Dim, Elem);
      Value *V = B.createFAdd(B.createLoad(Type::Float64, SrcPtr),
                              B.createLoad(Type::Float64, DstPtr));
      B.createStore(V, DstPtr);
    });
  });
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  return F;
}

/// Builds a random non-affine kernel: strided/modular access with an
/// optional data-dependent conditional.
Function *buildRandomSkeletonKernel(Module &M, SplitMixRng &Rng,
                                    unsigned Id) {
  auto *A = M.getGlobal("A");
  auto *Bg = M.getGlobal("B");
  Function *F = M.createFunction("sfuzz" + std::to_string(Id), Type::Void,
                                 {Type::Int64});
  F->setTask(true);
  Value *N = F->getArg(0);
  IRBuilder B(M, F->createBlock("entry"));
  std::int64_t Mod = 3 + static_cast<std::int64_t>(Rng.nextBelow(61));
  bool WithBranch = Rng.nextBelow(2) == 0;

  emitCountedLoop(B, B.getInt(0), N, B.getInt(1), "i", [&](IRBuilder &B,
                                                           Value *I) {
    Value *Idx = B.createSRem(B.createMul(I, B.getInt(7)), B.getInt(Mod));
    Value *SrcPtr = B.createGep1D(Bg, Idx, Elem);
    Value *V = B.createLoad(Type::Float64, SrcPtr);
    if (WithBranch) {
      Function *Fn = B.getInsertBlock()->getParent();
      Value *Cond = B.createCmp(CmpPred::FGT, V, B.getFloat(0.5));
      BasicBlock *Then = Fn->createBlock("then");
      BasicBlock *Join = Fn->createBlock("join");
      B.createCondBr(Cond, Then, Join);
      B.setInsertBlock(Then);
      B.createStore(B.createFMul(V, B.getFloat(2.0)),
                    B.createGep1D(A, Idx, Elem));
      B.createBr(Join);
      B.setInsertBlock(Join);
    } else {
      B.createStore(V, B.createGep1D(A, Idx, Elem));
    }
  });
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  return F;
}

/// Runs (optionally access then) execute in the interpreter over freshly
/// seeded memory and returns the bytes of array A.
std::vector<std::int64_t> runAndSnapshot(Module &M, Function *Access,
                                         Function *Exec, std::int64_t N) {
  sim::MachineConfig Cfg;
  sim::Loader L(M);
  sim::Memory Mem;
  SplitMixRng Data(0xDA7A);
  for (std::int64_t I = 0; I != Dim * Dim; ++I) {
    Mem.storeF64(L.baseOf("A") + static_cast<std::uint64_t>(I) * 8,
                 Data.nextDouble());
    Mem.storeF64(L.baseOf("B") + static_cast<std::uint64_t>(I) * 8,
                 Data.nextDouble());
  }
  sim::CacheHierarchy Caches(Cfg, 1);
  sim::Interpreter Interp(Cfg, Mem, Caches, L);
  std::vector<sim::RuntimeValue> Args{sim::RuntimeValue::ofInt(N)};
  if (Access)
    Interp.run(*Access, 0, Args);
  Interp.run(*Exec, 0, Args);
  std::vector<std::int64_t> Out;
  for (std::int64_t I = 0; I != Dim * Dim; ++I)
    Out.push_back(
        Mem.loadI64(L.baseOf("A") + static_cast<std::uint64_t>(I) * 8));
  return Out;
}

class AffineFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(AffineFuzz, GeneratedPhasePreservesSemantics) {
  SplitMixRng Rng(GetParam() * 7919 + 13);
  Module M;
  M.createGlobal("A", Dim * Dim * Elem);
  M.createGlobal("B", Dim * Dim * Elem);
  Function *Task = buildRandomAffine(M, Rng, GetParam());

  DaeOptions Opts;
  Opts.RepresentativeArgs = {12};
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Notes << "\n" << printFunction(*Task);
  EXPECT_TRUE(verifyFunction(*R.AccessFn).empty())
      << printFunction(*R.AccessFn);

  pm::FunctionAnalysisManager FAM;
  verify::AuditReport Audit = verify::auditAccessPhase(*R.AccessFn, FAM);
  EXPECT_TRUE(Audit.pure()) << Audit.str() << "\n"
                            << printFunction(*R.AccessFn);

  if (R.Strategy == analysis::TaskClass::Affine && R.NOrig >= 0 &&
      R.UsedConvexUnion) {
    EXPECT_LE(R.NOrig, R.NConvUn) << R.Notes;
  }

  auto Plain = runAndSnapshot(M, nullptr, Task, 12);
  auto Decoupled = runAndSnapshot(M, R.AccessFn, Task, 12);
  EXPECT_EQ(Plain, Decoupled) << "access phase changed results for\n"
                              << printFunction(*Task);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AffineFuzz, ::testing::Range(0u, 24u));

class SkeletonFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(SkeletonFuzz, GeneratedPhasePreservesSemantics) {
  SplitMixRng Rng(GetParam() * 104729 + 7);
  Module M;
  M.createGlobal("A", Dim * Dim * Elem);
  M.createGlobal("B", Dim * Dim * Elem);
  Function *Task = buildRandomSkeletonKernel(M, Rng, GetParam());

  DaeOptions Opts;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Notes << "\n" << printFunction(*Task);
  EXPECT_TRUE(verifyFunction(*R.AccessFn).empty())
      << printFunction(*R.AccessFn);

  pm::FunctionAnalysisManager FAM;
  verify::AuditReport Audit = verify::auditAccessPhase(*R.AccessFn, FAM);
  EXPECT_TRUE(Audit.pure()) << Audit.str() << "\n"
                            << printFunction(*R.AccessFn);

  auto Plain = runAndSnapshot(M, nullptr, Task, 300);
  auto Decoupled = runAndSnapshot(M, R.AccessFn, Task, 300);
  EXPECT_EQ(Plain, Decoupled) << "access phase changed results for\n"
                              << printFunction(*Task);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkeletonFuzz, ::testing::Range(0u, 24u));

} // namespace
