//===- tests/dae/ProfileGuidedRefinementTest.cpp - PG feedback loop --------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The profile-guided DAE refinement loop (--dae-profile-guided): the
// planner's rules and gating, the end-to-end coverage lift on FFT (whose
// bit-reversal task is the canonical victim of 5.2.2's conditional pruning),
// purity/differential invariants across the whole suite, and memo-transplant
// provenance across structurally identical modules.
//
//===----------------------------------------------------------------------===//

#include "dae/AccessProfile.h"
#include "dae/GenerationMemo.h"
#include "harness/Harness.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::harness;
using namespace dae::workloads;

namespace {

// --- planRefinement: rules and their GenerationTrace gating ---------------

TaskProfileData observed(std::uint64_t Misses, std::uint64_t Strict,
                         std::uint64_t Lines, std::uint64_t Unused) {
  TaskProfileData P;
  P.BaselineMisses = Misses;
  P.FootprintCoveredMisses = Misses;
  P.StrictCoveredMisses = Strict;
  P.PrefetchedLines = Lines;
  P.UnusedPrefetchedLines = Unused;
  P.Observations = 1;
  return P;
}

TEST(RefinementPlanner, KeepControlFlowNeedsARewrittenConditional) {
  RefinementConfig C;
  GenerationTrace T;
  T.SkeletonRan = true;
  T.CondCandidates = 1;
  T.CondsRewritten = 1;

  // Strict coverage 0.5 with a pruned conditional: restore it.
  TaskProfileData P = observed(10, 5, 10, 0);
  RefinementAction A = planRefinement(P, T, C);
  EXPECT_TRUE(A.KeepControlFlow);
  EXPECT_FALSE(A.PruneColdPrefetches);
  EXPECT_FALSE(A.SplitPhases);
  EXPECT_EQ(A.str(), "keep-control-flow");

  // Nothing was pruned: flipping SimplifyCfg cannot change the phase.
  T.CondsRewritten = 0;
  EXPECT_FALSE(planRefinement(P, T, C).any());

  // Coverage already at target: nothing to restore.
  T.CondsRewritten = 1;
  EXPECT_FALSE(planRefinement(observed(10, 10, 10, 0), T, C).any());

  // Affine-path tasks never pruned conditionals.
  GenerationTrace Affine;
  Affine.AffineRan = true;
  EXPECT_FALSE(planRefinement(P, Affine, C).any());
}

TEST(RefinementPlanner, PruneColdPrefetchesNeedsAProfiledColdSet) {
  RefinementConfig C;
  GenerationTrace T;
  T.SkeletonRan = true;

  // 40% of prefetched lines unused: overshoot 0.4 > the 0.05 budget.
  TaskProfileData P = observed(10, 10, 100, 40);
  EXPECT_FALSE(planRefinement(P, T, C).any())
      << "without a cold-load set there is nothing to prune";

  std::set<const ir::Instruction *> Cold{nullptr};
  C.ColdLoads = &Cold;
  RefinementAction A = planRefinement(P, T, C);
  EXPECT_TRUE(A.PruneColdPrefetches);
  EXPECT_EQ(A.str(), "prune-cold-prefetches");

  // Overshoot within budget: leave the phase alone.
  EXPECT_FALSE(planRefinement(observed(10, 10, 100, 2), T, C).any());
}

TEST(RefinementPlanner, SplitPhasesNeedsAMergedNestSpanningCacheLevels) {
  RefinementConfig C;
  C.PhaseSplitFootprintBytes = 64 * 1024;
  GenerationTrace T;
  T.AffineRan = true;
  T.MergeApplied = true;

  TaskProfileData P = observed(10, 10, 100, 0);
  P.ExecuteFootprintBytes = 128 * 1024;
  RefinementAction A = planRefinement(P, T, C);
  EXPECT_TRUE(A.SplitPhases);
  EXPECT_EQ(A.str(), "split-phases");

  // A footprint that fits the private cache has nothing to split.
  P.ExecuteFootprintBytes = 32 * 1024;
  EXPECT_FALSE(planRefinement(P, T, C).any());

  // No merge happened: MergeLoopNests=false cannot change the phase.
  P.ExecuteFootprintBytes = 128 * 1024;
  T.MergeApplied = false;
  EXPECT_FALSE(planRefinement(P, T, C).any());
}

TEST(RefinementPlanner, NoObservationsMeansNoAction) {
  RefinementConfig C;
  GenerationTrace T;
  T.SkeletonRan = true;
  T.CondsRewritten = 1;
  TaskProfileData Empty; // strictCoverage() == 1.0 but Observations == 0.
  EXPECT_FALSE(planRefinement(Empty, T, C).any());
}

TEST(RefinementPlanner, RefinedOptionsFlipExactlyThePlannedKnobs) {
  RefinementConfig C;
  std::set<const ir::Instruction *> Cold{nullptr};
  C.ColdLoads = &Cold;

  DaeOptions Base;
  RefinementAction A;
  A.KeepControlFlow = true;
  A.PruneColdPrefetches = true;
  A.SplitPhases = true;
  EXPECT_EQ(A.str(), "keep-control-flow,prune-cold-prefetches,split-phases");

  DaeOptions R = refinedOptions(Base, A, C);
  EXPECT_FALSE(R.SimplifyCfg);
  EXPECT_EQ(R.ColdLoads, &Cold);
  EXPECT_FALSE(R.MergeLoopNests);
  // Unrelated knobs ride along unchanged.
  EXPECT_EQ(R.UseConvexUnion, Base.UseConvexUnion);
  EXPECT_EQ(R.SplitClasses, Base.SplitClasses);

  RefinementAction None;
  DaeOptions Same = refinedOptions(Base, None, C);
  EXPECT_TRUE(Same.SimplifyCfg);
  EXPECT_EQ(Same.ColdLoads, nullptr);
  EXPECT_TRUE(Same.MergeLoopNests);
}

// --- End to end: FFT's pruned bit-reverse arm ------------------------------

TEST(ProfileGuidedRefinement, LiftsFftStrictCoverageWithoutOvershoot) {
  auto W = buildByName("fft", Scale::Test);
  ASSERT_TRUE(W);
  sim::MachineConfig Cfg;
  AppResult R = runApp(*W, Cfg, nullptr, nullptr, /*DaeVerify=*/true,
                       /*DaeProfileGuided=*/true);

  const ProfileGuidedResult &Pg = R.AutoPg;
  ASSERT_TRUE(Pg.Ran);
  EXPECT_GE(Pg.RefinedTasks, 1u);
  ASSERT_FALSE(Pg.Actions.empty());
  EXPECT_EQ(Pg.Actions[0], "fft_bitrev: keep-control-flow");

  // The acceptance bar: strict coverage lifted to the CI gate's floor
  // without blowing the overshoot budget (<= 1.1x the unrefined phase).
  EXPECT_LT(Pg.Before.strictCoverage(), 0.95);
  EXPECT_GE(Pg.After.strictCoverage(), 0.95);
  EXPECT_LE(Pg.After.overshoot(), Pg.Before.overshoot() * 1.1 + 1e-9);

  // Refinement must never trade correctness: refined phases audit pure, the
  // differential stays bit-identical, and the three schemes still agree.
  EXPECT_TRUE(Pg.AuditPure) << "refined phase failed the purity audit";
  EXPECT_TRUE(Pg.After.pure());
  EXPECT_TRUE(R.AutoVerify.Ran);
  EXPECT_TRUE(R.AutoVerify.AuditPure);
  EXPECT_TRUE(R.AutoVerify.Diff.pure());
  EXPECT_TRUE(R.OutputsMatch);

  // Covering the swap arm's misses can only help the Min/Max EDP.
  EXPECT_GT(Pg.EdpBefore, 0.0);
  EXPECT_LE(Pg.EdpAfter, Pg.EdpBefore);

  // Provenance lands on the generation diagnostics.
  bool FoundProvenance = false;
  for (const AccessPhaseResult &G : R.Generation)
    if (G.ProfileRefined) {
      FoundProvenance = true;
      EXPECT_EQ(G.RefinementNote, "keep-control-flow");
    }
  EXPECT_TRUE(FoundProvenance);
}

TEST(ProfileGuidedRefinement, FlagOffTouchesNothing) {
  auto W = buildByName("fft", Scale::Test);
  ASSERT_TRUE(W);
  sim::MachineConfig Cfg;
  AppResult R = runApp(*W, Cfg);
  EXPECT_FALSE(R.AutoPg.Ran);
  EXPECT_EQ(R.AutoPg.RefinedTasks, 0u);
  for (const AccessPhaseResult &G : R.Generation)
    EXPECT_FALSE(G.ProfileRefined);
}

// --- Whole suite: refinement preserves the correctness invariants ----------

TEST(ProfileGuidedRefinement, EveryWorkloadStaysPureAndMeetsTheGate) {
  auto Workloads = buildAll(Scale::Test);
  std::vector<SuiteItem> Items;
  for (auto &W : Workloads)
    Items.push_back({W.get(), nullptr});

  GenerationMemo Memo;
  SuiteConfig SC;
  SC.Memo = &Memo;
  SC.DaeVerify = true;
  SC.DaeProfileGuided = true;
  sim::MachineConfig Cfg;
  std::vector<AppResult> Results = runSuite(Items, Cfg, SC);

  ASSERT_EQ(Results.size(), Workloads.size());
  for (const AppResult &R : Results) {
    EXPECT_TRUE(R.OutputsMatch) << R.Name;
    ASSERT_TRUE(R.AutoPg.Ran) << R.Name;
    EXPECT_TRUE(R.AutoPg.AuditPure) << R.Name;
    EXPECT_TRUE(R.AutoPg.After.pure()) << R.Name;
    EXPECT_GE(R.AutoPg.After.strictCoverage(), 0.95) << R.Name;
    EXPECT_LE(R.AutoPg.After.overshoot(),
              R.AutoPg.Before.overshoot() * 1.1 + 1e-9)
        << R.Name;
    // The refined scheme is what --dae-verify then re-checks.
    EXPECT_TRUE(R.AutoVerify.Diff.pure()) << R.Name;
    EXPECT_GE(R.AutoVerify.Diff.strictCoverage(), 0.95) << R.Name;
  }
}

// --- Memo transplant: provenance crosses modules, results cross nothing ----

TEST(ProfileGuidedRefinement, TransplantCarriesProvenanceDeterministically) {
  struct Snapshot {
    std::vector<std::uint8_t> Outputs[2];
    double Strict[2], Overshoot[2], Edp[2];
  };
  std::vector<Snapshot> Runs;

  // Two structurally identical FFT instances share one memo: the first
  // instance's refined generation seeds the cache, the second receives the
  // phase by transplant. Every (jobs, sim-threads) combination must agree
  // bit-for-bit and both instances must carry refinement provenance.
  const unsigned Combos[][2] = {{1, 1}, {2, 2}, {4, 1}};
  for (auto &JS : Combos) {
    auto A = buildByName("fft", Scale::Test);
    auto B = buildByName("fft", Scale::Test);
    ASSERT_TRUE(A && B);
    std::vector<SuiteItem> Items = {{A.get(), nullptr}, {B.get(), nullptr}};

    GenerationMemo Memo;
    SuiteConfig SC;
    SC.Jobs = JS[0];
    SC.SimThreads = JS[1];
    SC.Memo = &Memo;
    SC.DaeVerify = true;
    SC.DaeProfileGuided = true;
    sim::MachineConfig Cfg;
    std::vector<AppResult> Results = runSuite(Items, Cfg, SC);
    ASSERT_EQ(Results.size(), 2u);

    Snapshot S;
    for (int I = 0; I != 2; ++I) {
      const AppResult &R = Results[I];
      ASSERT_TRUE(R.AutoPg.Ran) << "instance " << I;
      EXPECT_GE(R.AutoPg.RefinedTasks, 1u) << "instance " << I;
      EXPECT_TRUE(R.AutoPg.AuditPure) << "instance " << I;
      EXPECT_TRUE(R.AutoPg.After.pure()) << "instance " << I;
      EXPECT_TRUE(R.AutoVerify.Diff.pure()) << "instance " << I;
      EXPECT_TRUE(R.OutputsMatch) << "instance " << I;

      // Provenance must survive the memo transplant into instance B's
      // module, not just the fresh generation in instance A's.
      bool Found = false;
      for (const AccessPhaseResult &G : R.Generation)
        if (G.ProfileRefined) {
          Found = true;
          EXPECT_EQ(G.RefinementNote, "keep-control-flow");
        }
      EXPECT_TRUE(Found) << "instance " << I << " lost provenance";

      S.Outputs[I] = R.AutoOutputs;
      S.Strict[I] = R.AutoPg.After.strictCoverage();
      S.Overshoot[I] = R.AutoPg.After.overshoot();
      S.Edp[I] = R.AutoPg.EdpAfter;
    }
    // The two instances are the same program: identical outputs and metrics.
    EXPECT_EQ(S.Outputs[0], S.Outputs[1]);
    EXPECT_EQ(S.Strict[0], S.Strict[1]);
    Runs.push_back(std::move(S));
  }

  // Bit-identical across every (jobs, sim-threads) combination.
  for (size_t R = 1; R != Runs.size(); ++R)
    for (int I = 0; I != 2; ++I) {
      EXPECT_EQ(Runs[R].Outputs[I], Runs[0].Outputs[I]) << "combo " << R;
      EXPECT_EQ(Runs[R].Strict[I], Runs[0].Strict[I]) << "combo " << R;
      EXPECT_EQ(Runs[R].Overshoot[I], Runs[0].Overshoot[I]) << "combo " << R;
      EXPECT_EQ(Runs[R].Edp[I], Runs[0].Edp[I]) << "combo " << R;
    }
}

} // namespace
