//===- tests/dae/GenerationMemoTest.cpp - Memoized generation ---------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The generation memo's contract: identical (task, options) pairs return the
// cached access phase; flipping a knob the generation consulted regenerates;
// flipping a knob the GenerationTrace proved irrelevant still hits. Each
// sweep uses a freshly built workload instance, exactly like the ablation
// drivers the memo exists for.
//
//===----------------------------------------------------------------------===//

#include "dae/GenerationMemo.h"
#include "ir/Printer.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace dae;

namespace {

std::vector<AccessPhaseResult> genAll(GenerationMemo &Memo,
                                      workloads::Workload &W,
                                      const DaeOptions &Opts) {
  std::vector<AccessPhaseResult> Rs;
  for (ir::Function *F : W.taskFunctions())
    Rs.push_back(Memo.generate(*W.M, *F, Opts));
  return Rs;
}

TEST(GenerationMemoTest, IdenticalOptionsHitTheCache) {
  GenerationMemo Memo;
  auto W1 = workloads::buildLu(workloads::Scale::Test);
  std::vector<AccessPhaseResult> R1 = genAll(Memo, *W1, W1->Opts);
  ASSERT_FALSE(R1.empty());
  GenerationMemo::Stats S1 = Memo.stats();
  EXPECT_EQ(S1.Hits, 0u);
  EXPECT_EQ(S1.Misses, R1.size());

  // A second, structurally identical workload instance with the same options
  // must be served entirely from the cache.
  auto W2 = workloads::buildLu(workloads::Scale::Test);
  std::vector<AccessPhaseResult> R2 = genAll(Memo, *W2, W2->Opts);
  GenerationMemo::Stats S2 = Memo.stats();
  EXPECT_EQ(S2.Hits, R1.size());
  EXPECT_EQ(S2.Misses, R1.size());

  ASSERT_EQ(R1.size(), R2.size());
  for (std::size_t I = 0; I != R1.size(); ++I) {
    ASSERT_TRUE(R1[I].succeeded());
    ASSERT_TRUE(R2[I].succeeded());
    EXPECT_EQ(R1[I].Strategy, R2[I].Strategy);
    EXPECT_EQ(R1[I].NOrig, R2[I].NOrig);
    EXPECT_EQ(R1[I].NConvUn, R2[I].NConvUn);
    EXPECT_EQ(R1[I].NumPrefetchNests, R2[I].NumPrefetchNests);
    EXPECT_EQ(R1[I].NumClasses, R2[I].NumClasses);
    // The transplanted copy must be structurally identical to the original.
    EXPECT_EQ(ir::printFunction(*R1[I].AccessFn),
              ir::printFunction(*R2[I].AccessFn));
  }
}

TEST(GenerationMemoTest, RelevantKnobRegenerates) {
  GenerationMemo Memo;
  auto W1 = workloads::buildLu(workloads::Scale::Test);
  std::size_t NumTasks = genAll(Memo, *W1, W1->Opts).size();

  // LU's tasks are affine; the hull-vs-range choice is consulted on every
  // generation, so flipping it must miss for every task.
  auto W2 = workloads::buildLu(workloads::Scale::Test);
  DaeOptions Range = W2->Opts;
  Range.UseConvexUnion = false;
  std::vector<AccessPhaseResult> R2 = genAll(Memo, *W2, Range);
  GenerationMemo::Stats S = Memo.stats();
  EXPECT_EQ(S.Hits, 0u);
  EXPECT_EQ(S.Misses, 2 * NumTasks);
  for (const AccessPhaseResult &R : R2)
    EXPECT_FALSE(R.UsedConvexUnion);
}

TEST(GenerationMemoTest, IrrelevantKnobsStillHit) {
  GenerationMemo Memo;
  auto W1 = workloads::buildLu(workloads::Scale::Test);
  std::size_t NumTasks = genAll(Memo, *W1, W1->Opts).size();

  // Raising the hull-slack threshold accepts exactly the same hulls on LU
  // (the default already accepts all of them), so every task hits.
  auto W2 = workloads::buildLu(workloads::Scale::Test);
  DaeOptions NoGuard = W2->Opts;
  NoGuard.HullSlackThreshold = 1 << 30;
  genAll(Memo, *W2, NoGuard);
  EXPECT_EQ(Memo.stats().Hits, NumTasks);

  // SimplifyCfg belongs to the skeleton path, which never engaged for LU's
  // affine tasks — flipping it is irrelevant too.
  auto W3 = workloads::buildLu(workloads::Scale::Test);
  DaeOptions CfgFlip = W3->Opts;
  CfgFlip.SimplifyCfg = !CfgFlip.SimplifyCfg;
  genAll(Memo, *W3, CfgFlip);
  GenerationMemo::Stats S = Memo.stats();
  EXPECT_EQ(S.Hits, 2 * NumTasks);
  EXPECT_EQ(S.Misses, NumTasks);
}

TEST(GenerationMemoTest, CapEvictsLruEntriesAndCountsThem) {
  // A cap far below one workload's footprint forces evictions while the
  // sweep runs; results must stay bit-identical to the uncapped memo (an
  // evicted entry is just a future miss, never wrong data).
  GenerationMemo Capped(/*MaxRetainedBytes=*/1024);
  GenerationMemo Uncapped;
  auto W1 = workloads::buildLu(workloads::Scale::Test);
  auto W2 = workloads::buildLu(workloads::Scale::Test);
  std::vector<AccessPhaseResult> RC = genAll(Capped, *W1, W1->Opts);
  std::vector<AccessPhaseResult> RU = genAll(Uncapped, *W2, W2->Opts);
  ASSERT_EQ(RC.size(), RU.size());
  for (std::size_t I = 0; I != RC.size(); ++I)
    EXPECT_EQ(ir::printFunction(*RC[I].AccessFn),
              ir::printFunction(*RU[I].AccessFn));

  GenerationMemo::Stats S = Capped.stats();
  EXPECT_GT(S.Evictions, 0u);
  EXPECT_LE(Capped.retainedBytes(), 1024u);
  EXPECT_EQ(Uncapped.stats().Evictions, 0u);

  // A second pass still works (mostly missing now — the entries were
  // evicted), and stays identical.
  auto W3 = workloads::buildLu(workloads::Scale::Test);
  std::vector<AccessPhaseResult> R3 = genAll(Capped, *W3, W3->Opts);
  for (std::size_t I = 0; I != R3.size(); ++I)
    EXPECT_EQ(ir::printFunction(*R3[I].AccessFn),
              ir::printFunction(*RU[I].AccessFn));
}

TEST(GenerationMemoTest, GenerousCapNeverEvicts) {
  GenerationMemo Memo(/*MaxRetainedBytes=*/std::size_t(64) << 20);
  auto W1 = workloads::buildLu(workloads::Scale::Test);
  std::size_t NumTasks = genAll(Memo, *W1, W1->Opts).size();
  auto W2 = workloads::buildLu(workloads::Scale::Test);
  genAll(Memo, *W2, W2->Opts);
  GenerationMemo::Stats S = Memo.stats();
  EXPECT_EQ(S.Evictions, 0u);
  EXPECT_EQ(S.Hits, NumTasks);
  EXPECT_EQ(Memo.entryCount(), NumTasks);
  EXPECT_GT(Memo.retainedBytes(), 0u);
}

TEST(GenerationMemoDeathTest, GarbageCapEnvIsAHardError) {
  EXPECT_EXIT(
      {
        setenv("DAECC_MEMO_CAP_MB", "lots", 1);
        GenerationMemo Memo;
        (void)Memo.stats();
        std::exit(0);
      },
      ::testing::ExitedWithCode(2), "invalid DAECC_MEMO_CAP_MB value 'lots'");
  unsetenv("DAECC_MEMO_CAP_MB");
}

TEST(GenerationMemoTest, SkeletonTraceDrivesRelevance) {
  GenerationMemo Memo;
  auto W1 = workloads::buildByName("cg", workloads::Scale::Test);
  std::size_t NumTasks = genAll(Memo, *W1, W1->Opts).size();
  ASSERT_GT(NumTasks, 0u);

  // CG's skeleton rewrites no conditionals, so keeping them changes nothing
  // and the memo proves it: SimplifyCfg=false hits.
  auto W2 = workloads::buildByName("cg", workloads::Scale::Test);
  DaeOptions KeepCond = W2->Opts;
  KeepCond.SimplifyCfg = false;
  genAll(Memo, *W2, KeepCond);
  EXPECT_EQ(Memo.stats().Hits, NumTasks);

  // The task does store (y[] is written), so PrefetchWrites is consulted
  // and flipping it must regenerate.
  auto W3 = workloads::buildByName("cg", workloads::Scale::Test);
  DaeOptions Writes = W3->Opts;
  Writes.PrefetchWrites = true;
  genAll(Memo, *W3, Writes);
  GenerationMemo::Stats S = Memo.stats();
  EXPECT_EQ(S.Hits, NumTasks);
  EXPECT_EQ(S.Misses, 2 * NumTasks);
}

} // namespace
