//===- tests/dae/SkeletonGeneratorTest.cpp - Section 5.2 unit tests -------===//
//
// Part of daecc. Distributed under the MIT license.
//
// Exercises the skeleton path: the six-step marking algorithm, CFG
// simplification, store discarding, prefetch-once dedup, inlining as a
// precondition, and the safety rejections.
//
//===----------------------------------------------------------------------===//

#include "dae/AccessGenerator.h"

#include "analysis/LoopInfo.h"
#include "pm/Analyses.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::ir;

namespace {

constexpr std::int64_t Elems = 4096;
constexpr std::int64_t Elem = 8;

struct CountVisitor {
  unsigned Prefetches = 0;
  unsigned Loads = 0;
  unsigned Stores = 0;
  unsigned CondBranches = 0;
  unsigned Loops = 0;

  explicit CountVisitor(Function &F) {
    for (const auto &BB : F)
      for (const auto &I : *BB) {
        if (isa<PrefetchInst>(I.get()))
          ++Prefetches;
        else if (isa<LoadInst>(I.get()))
          ++Loads;
        else if (isa<StoreInst>(I.get()))
          ++Stores;
        else if (auto *Br = dyn_cast<BrInst>(I.get()))
          CondBranches += Br->isConditional();
      }
    pm::FunctionAnalysisManager FAM;
    Loops = static_cast<unsigned>(
        FAM.getResult<pm::LoopAnalysis>(F).loops().size());
  }
};

/// Indirect (sparse-style) sum: for i in [0,n): acc += Val[Col[i]].
/// The Col load feeds an address, so the skeleton must keep it as a load;
/// the Val load is pure payload and must be reduced to a prefetch.
Function *buildIndirect(Module &M) {
  auto *Col = M.createGlobal("Col", Elems * Elem);
  auto *Val = M.createGlobal("Val", Elems * Elem);
  auto *Out = M.createGlobal("Out", Elem);
  Function *F = M.createFunction("indirect", Type::Void, {Type::Int64});
  F->setTask(true);
  IRBuilder B(M, F->createBlock("entry"));
  Value *N = F->getArg(0);

  // Accumulate through memory (Out[0]) so the reduction survives in the
  // execute phase but is discardable in the access phase.
  emitCountedLoop(
      B, B.getInt(0), N, B.getInt(1), "i", [&](IRBuilder &B, Value *I) {
        Value *ColPtr = B.createGep1D(Col, I, Elem);
        Value *Idx = B.createLoad(Type::Int64, ColPtr);
        Value *ValPtr = B.createGep1D(Val, Idx, Elem);
        Value *V = B.createLoad(Type::Float64, ValPtr);
        Value *OutPtr = B.createGep1D(Out, B.getInt(0), Elem);
        Value *Acc = B.createLoad(Type::Float64, OutPtr);
        B.createStore(B.createFAdd(Acc, V), OutPtr);
      });
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  return F;
}

/// Data-dependent branch in the loop body:
///   for i: if (Flag[i] > 0) { Out[0] += Data[i]; }
Function *buildConditional(Module &M) {
  auto *Flag = M.createGlobal("Flag", Elems * Elem);
  auto *Data = M.createGlobal("Data", Elems * Elem);
  auto *Out = M.createGlobal("Out", Elem);
  Function *F = M.createFunction("cond", Type::Void, {Type::Int64});
  F->setTask(true);
  IRBuilder B(M, F->createBlock("entry"));
  Value *N = F->getArg(0);

  emitCountedLoop(
      B, B.getInt(0), N, B.getInt(1), "i", [&](IRBuilder &B, Value *I) {
        Value *FlagPtr = B.createGep1D(Flag, I, Elem);
        Value *Fv = B.createLoad(Type::Int64, FlagPtr);
        Value *Cond = B.createCmp(CmpPred::SGT, Fv, B.getInt(0));
        Function *Fn = B.getInsertBlock()->getParent();
        BasicBlock *Then = Fn->createBlock("then");
        BasicBlock *Join = Fn->createBlock("join");
        B.createCondBr(Cond, Then, Join);
        B.setInsertBlock(Then);
        Value *DataPtr = B.createGep1D(Data, I, Elem);
        Value *D = B.createLoad(Type::Float64, DataPtr);
        Value *OutPtr = B.createGep1D(Out, B.getInt(0), Elem);
        B.createStore(B.createFAdd(B.createLoad(Type::Float64, OutPtr), D),
                      OutPtr);
        B.createBr(Join);
        B.setInsertBlock(Join);
      });
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  return F;
}

TEST(SkeletonGeneratorTest, IndirectAccessKeepsAddressLoads) {
  Module M;
  Function *Task = buildIndirect(M);
  DaeOptions Opts;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);

  ASSERT_TRUE(R.succeeded()) << R.Notes;
  EXPECT_EQ(R.Strategy, analysis::TaskClass::Skeleton);
  CountVisitor V(*R.AccessFn);
  // Col[i] load survives (feeds Val's address); Val load is dropped in
  // favour of its prefetch; Out accumulation disappears entirely.
  EXPECT_EQ(V.Loads, 1u) << printFunction(*R.AccessFn);
  EXPECT_EQ(V.Stores, 0u);
  // Prefetches: Col[i], Val[Col[i]], and (deduped) nothing else. The Out[0]
  // read is loop-invariant but still a guaranteed external read.
  EXPECT_GE(V.Prefetches, 2u);
  EXPECT_EQ(V.Loops, 1u);
  EXPECT_TRUE(verifyFunction(*R.AccessFn).empty())
      << printFunction(*R.AccessFn);
}

TEST(SkeletonGeneratorTest, SimplifiedCfgDropsConditional) {
  Module M;
  Function *Task = buildConditional(M);
  DaeOptions Opts; // SimplifyCfg on by default.
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);

  ASSERT_TRUE(R.succeeded()) << R.Notes;
  CountVisitor V(*R.AccessFn);
  // Only the loop exit test remains conditional; the flag-dependent branch
  // and everything under it (the Data/Out accesses) are gone.
  EXPECT_EQ(V.CondBranches, 1u) << printFunction(*R.AccessFn);
  EXPECT_EQ(V.Prefetches, 1u); // Flag[i] only.
  EXPECT_EQ(V.Stores, 0u);
}

TEST(SkeletonGeneratorTest, KeepingConditionalsPrefetchesMore) {
  Module M;
  Function *Task = buildConditional(M);
  DaeOptions Opts;
  Opts.SimplifyCfg = false;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);

  ASSERT_TRUE(R.succeeded()) << R.Notes;
  CountVisitor V(*R.AccessFn);
  // The data-dependent branch survives, and with it the conditional
  // prefetches of Data[i] / Out[0].
  EXPECT_EQ(V.CondBranches, 2u) << printFunction(*R.AccessFn);
  EXPECT_GE(V.Prefetches, 2u);
  // The flag load must survive (it feeds control flow).
  EXPECT_GE(V.Loads, 1u);
  EXPECT_EQ(V.Stores, 0u);
}

TEST(SkeletonGeneratorTest, StoresAreDiscardedNotPrefetched) {
  // Pure streaming store: for i: Dst[i] = Src[i] * 2.
  Module M;
  auto *Src = M.createGlobal("Src", Elems * Elem);
  auto *Dst = M.createGlobal("Dst", Elems * Elem);
  Function *Task = M.createFunction("stream", Type::Void, {Type::Int64});
  Task->setTask(true);
  IRBuilder B(M, Task->createBlock("entry"));
  emitCountedLoop(B, B.getInt(0), Task->getArg(0), B.getInt(1), "i",
                  [&](IRBuilder &B, Value *I) {
                    Value *SrcPtr = B.createGep1D(Src, I, Elem);
                    Value *V = B.createLoad(Type::Float64, SrcPtr);
                    Value *Two = B.getFloat(2.0);
                    Value *DstPtr = B.createGep1D(Dst, I, Elem);
                    B.createStore(B.createFMul(V, Two), DstPtr);
                  });
  B.createRet();

  {
    Module M2; // Fresh module for the ablation variant.
    (void)M2;
  }
  DaeOptions Plain;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Plain);
  ASSERT_TRUE(R.succeeded()) << R.Notes;
  CountVisitor V(*R.AccessFn);
  EXPECT_EQ(V.Stores, 0u);
  EXPECT_EQ(V.Prefetches, 1u); // Src[i] only; Dst never prefetched.
}

TEST(SkeletonGeneratorTest, PrefetchWritesAblationAddsStorePrefetch) {
  Module M;
  auto *Src = M.createGlobal("Src", Elems * Elem);
  auto *Dst = M.createGlobal("Dst", Elems * Elem);
  Function *Task = M.createFunction("stream", Type::Void, {Type::Int64});
  Task->setTask(true);
  IRBuilder B(M, Task->createBlock("entry"));
  emitCountedLoop(B, B.getInt(0), Task->getArg(0), B.getInt(1), "i",
                  [&](IRBuilder &B, Value *I) {
                    Value *SrcPtr = B.createGep1D(Src, I, Elem);
                    Value *V = B.createLoad(Type::Float64, SrcPtr);
                    Value *DstPtr = B.createGep1D(Dst, I, Elem);
                    B.createStore(B.createFMul(V, B.getFloat(2.0)), DstPtr);
                  });
  B.createRet();

  DaeOptions Opts;
  Opts.PrefetchWrites = true;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Notes;
  CountVisitor V(*R.AccessFn);
  EXPECT_EQ(V.Stores, 0u);      // Stores are still discarded...
  EXPECT_EQ(V.Prefetches, 2u);  // ...but Dst[i] is now prefetched too.
}

TEST(SkeletonGeneratorTest, PrefetchOncePerAddressValue) {
  // Two loads from the identical GEP: only one prefetch is emitted.
  Module M;
  auto *A = M.createGlobal("A", Elems * Elem);
  auto *Out = M.createGlobal("Out", Elem);
  Function *Task = M.createFunction("dup", Type::Void, {Type::Int64});
  Task->setTask(true);
  IRBuilder B(M, Task->createBlock("entry"));
  emitCountedLoop(
      B, B.getInt(0), Task->getArg(0), B.getInt(1), "i",
      [&](IRBuilder &B, Value *I) {
        // Use srem (non-affine) so the task stays on the skeleton path.
        Value *Idx = B.createSRem(I, B.getInt(7));
        Value *Ptr = B.createGep1D(A, Idx, Elem);
        Value *V1 = B.createLoad(Type::Float64, Ptr);
        Value *V2 = B.createLoad(Type::Float64, Ptr);
        Value *OutPtr = B.createGep1D(Out, B.getInt(0), Elem);
        B.createStore(B.createFAdd(V1, V2), OutPtr);
      });
  B.createRet();

  DaeOptions Opts;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Notes;
  EXPECT_EQ(R.Strategy, analysis::TaskClass::Skeleton);
  CountVisitor V(*R.AccessFn);
  EXPECT_EQ(V.Prefetches, 1u) << printFunction(*R.AccessFn);
}

TEST(SkeletonGeneratorTest, NonInlinableCallRejectsTask) {
  Module M;
  Function *Ext = M.createFunction("external", Type::Float64, {Type::Int64});
  Ext->setNoInline(true);
  {
    IRBuilder B(M, Ext->createBlock("entry"));
    B.createRet(B.createCast(CastOp::SIToFP, Ext->getArg(0)));
  }
  auto *Out = M.createGlobal("Out", Elem);
  Function *Task = M.createFunction("caller", Type::Void, {Type::Int64});
  Task->setTask(true);
  IRBuilder B(M, Task->createBlock("entry"));
  Value *R1 = B.createCall(Ext, {Task->getArg(0)});
  B.createStore(R1, B.createGep1D(Out, B.getInt(0), Elem));
  B.createRet();

  DaeOptions Opts;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  EXPECT_FALSE(R.succeeded());
  EXPECT_EQ(R.Strategy, analysis::TaskClass::Rejected);
}

TEST(SkeletonGeneratorTest, InlinableCallIsAbsorbed) {
  // A task calling an inlinable helper gets an access phase with no calls.
  Module M;
  auto *A = M.createGlobal("A", Elems * Elem);
  auto *Out = M.createGlobal("Out", Elem);

  Function *Helper = M.createFunction("helper", Type::Float64, {Type::Int64});
  {
    IRBuilder B(M, Helper->createBlock("entry"));
    Value *Ptr = B.createGep1D(A, Helper->getArg(0), Elem);
    B.createRet(B.createLoad(Type::Float64, Ptr));
  }

  Function *Task = M.createFunction("caller", Type::Void, {Type::Int64});
  Task->setTask(true);
  IRBuilder B(M, Task->createBlock("entry"));
  emitCountedLoop(B, B.getInt(0), Task->getArg(0), B.getInt(1), "i",
                  [&](IRBuilder &B, Value *I) {
                    Value *Idx = B.createSRem(I, B.getInt(13));
                    Value *V = B.createCall(Helper, {Idx});
                    Value *OutPtr = B.createGep1D(Out, B.getInt(0), Elem);
                    B.createStore(V, OutPtr);
                  });
  B.createRet();

  DaeOptions Opts;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Notes;
  for (const auto &BB : *R.AccessFn)
    for (const auto &I : *BB)
      EXPECT_FALSE(isa<CallInst>(I.get()));
  CountVisitor V(*R.AccessFn);
  EXPECT_GE(V.Prefetches, 1u);
}

TEST(SkeletonGeneratorTest, AddressFromOwnStoreRejectsTask) {
  // The task stores an index into Tmp and reads it back to form an address:
  // generating an access version would require replicating the write to
  // externally visible state (section 5.2.2 step 5).
  Module M;
  auto *Tmp = M.createGlobal("Tmp", Elem);
  auto *A = M.createGlobal("A", Elems * Elem);
  auto *Out = M.createGlobal("Out", Elem);
  Function *Task = M.createFunction("selfdep", Type::Void, {Type::Int64});
  Task->setTask(true);
  IRBuilder B(M, Task->createBlock("entry"));
  Value *TmpPtr = B.createGep1D(Tmp, B.getInt(0), Elem);
  B.createStore(Task->getArg(0), TmpPtr);
  Value *Idx = B.createLoad(Type::Int64, TmpPtr);
  Value *V = B.createLoad(Type::Float64, B.createGep1D(A, Idx, Elem));
  B.createStore(V, B.createGep1D(Out, B.getInt(0), Elem));
  B.createRet();

  DaeOptions Opts;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  EXPECT_FALSE(R.succeeded());
  EXPECT_EQ(R.Strategy, analysis::TaskClass::Rejected);
}

TEST(SkeletonGeneratorTest, EmptiedLoopsAreDeleted) {
  // A loop whose body only computes stored values leaves no prefetches
  // behind; the dead IV shell must not survive into the access phase.
  Module M;
  auto *Dst = M.createGlobal("Dst", Elems * Elem);
  auto *Src = M.createGlobal("Src", Elems * Elem);
  Function *Task = M.createFunction("two_loops", Type::Void, {Type::Int64});
  Task->setTask(true);
  IRBuilder B(M, Task->createBlock("entry"));
  // Loop 1: Dst[i] = i * 3 (no reads at all).
  emitCountedLoop(B, B.getInt(0), Task->getArg(0), B.getInt(1), "a",
                  [&](IRBuilder &B, Value *I) {
                    Value *V = B.createMul(I, B.getInt(3));
                    B.createStore(B.createCast(CastOp::SIToFP, V),
                                  B.createGep1D(Dst, I, Elem));
                  });
  // Loop 2: reads Src (so the task is not read-free overall), non-affine.
  emitCountedLoop(B, B.getInt(0), Task->getArg(0), B.getInt(1), "b",
                  [&](IRBuilder &B, Value *I) {
                    Value *Idx = B.createSRem(I, B.getInt(5));
                    Value *V =
                        B.createLoad(Type::Float64, B.createGep1D(Src, Idx, Elem));
                    B.createStore(V, B.createGep1D(Dst, I, Elem));
                  });
  B.createRet();

  DaeOptions Opts;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Notes;
  CountVisitor V(*R.AccessFn);
  EXPECT_EQ(V.Loops, 1u) << printFunction(*R.AccessFn); // Loop 1 deleted.
  EXPECT_EQ(V.Prefetches, 1u);
}

} // namespace
