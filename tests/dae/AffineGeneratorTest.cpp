//===- tests/dae/AffineGeneratorTest.cpp - Section 5.1 unit tests ---------===//
//
// Part of daecc. Distributed under the MIT license.
//
// Reproduces the paper's Listings 1-3 as Task IR and checks the generated
// access phases structurally: class separation, convex-union guard, nest
// merging, and the 5.1.1 memory-range contrast of Figure 1(b).
//
//===----------------------------------------------------------------------===//

#include "dae/AccessGenerator.h"
#include "dae/AffineGenerator.h"

#include "analysis/LoopInfo.h"
#include "pm/Analyses.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::ir;

namespace {

constexpr std::int64_t Dim = 64; ///< Static extent of the 2-D test arrays.
constexpr std::int64_t Elem = 8;

struct CountVisitor {
  unsigned Prefetches = 0;
  unsigned Loads = 0;
  unsigned Stores = 0;
  unsigned Loops = 0;

  explicit CountVisitor(Function &F) {
    for (const auto &BB : F)
      for (const auto &I : *BB) {
        if (isa<PrefetchInst>(I.get()))
          ++Prefetches;
        else if (isa<LoadInst>(I.get()))
          ++Loads;
        else if (isa<StoreInst>(I.get()))
          ++Stores;
      }
    pm::FunctionAnalysisManager FAM;
    Loops = static_cast<unsigned>(
        FAM.getResult<pm::LoopAnalysis>(F).loops().size());
  }
};

/// Listing 1(a): the LU kernel accessing the whole matrix.
///   for (i = 0; i < N; i++)
///     for (j = i+1; j < N; j++) {
///       A[j][i] /= A[i][i];
///       for (k = i+1; k < N; k++)
///         A[j][k] -= A[j][i] * A[i][k];
///     }
Function *buildLuWholeMatrix(Module &M) {
  auto *A = M.createGlobal("A", Dim * Dim * Elem);
  Function *F = M.createFunction("lu", Type::Void, {Type::Int64});
  F->setTask(true);
  Value *N = F->getArg(0);
  IRBuilder B(M, F->createBlock("entry"));

  emitCountedLoop(B, B.getInt(0), N, B.getInt(1), "i", [&](IRBuilder &B,
                                                           Value *I) {
    Value *IPlus1 = B.createAdd(I, B.getInt(1));
    emitCountedLoop(B, IPlus1, N, B.getInt(1), "j", [&](IRBuilder &B,
                                                        Value *J) {
      Value *Aji = B.createGep2D(A, J, I, Dim, Elem);
      Value *Aii = B.createGep2D(A, I, I, Dim, Elem);
      Value *Quot = B.createFDiv(B.createLoad(Type::Float64, Aji),
                                 B.createLoad(Type::Float64, Aii));
      B.createStore(Quot, Aji);
      emitCountedLoop(
          B, IPlus1, N, B.getInt(1), "k", [&](IRBuilder &B, Value *K) {
            Value *Ajk = B.createGep2D(A, J, K, Dim, Elem);
            Value *Aik = B.createGep2D(A, I, K, Dim, Elem);
            Value *Prod = B.createFMul(B.createLoad(Type::Float64, Aji),
                                       B.createLoad(Type::Float64, Aik));
            Value *Diff =
                B.createFSub(B.createLoad(Type::Float64, Ajk), Prod);
            B.createStore(Diff, Ajk);
          });
    });
  });
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  return F;
}

/// Listing 3(a): a loop nest accessing two parameterized blocks of A.
///   for (i) for (j = i+1) for (k = i+1)
///     A[Ax+j][Ay+k] -= A[Dx+j][Dy+i] * A[Ax+i][Ay+k];
Function *buildBlockKernel(Module &M) {
  auto *A = M.createGlobal("A", Dim * Dim * Elem);
  Function *F = M.createFunction(
      "lu_block", Type::Void,
      {Type::Int64, Type::Int64, Type::Int64, Type::Int64, Type::Int64});
  F->setTask(true);
  Value *Block = F->getArg(0);
  Value *Ax = F->getArg(1), *Ay = F->getArg(2);
  Value *Dx = F->getArg(3), *Dy = F->getArg(4);
  IRBuilder B(M, F->createBlock("entry"));

  emitCountedLoop(B, B.getInt(0), Block, B.getInt(1), "i", [&](IRBuilder &B,
                                                               Value *I) {
    Value *IPlus1 = B.createAdd(I, B.getInt(1));
    emitCountedLoop(B, IPlus1, Block, B.getInt(1), "j", [&](IRBuilder &B,
                                                            Value *J) {
      emitCountedLoop(B, IPlus1, Block, B.getInt(1), "k", [&](IRBuilder &B,
                                                              Value *K) {
        Value *Dst = B.createGep2D(A, B.createAdd(Ax, J), B.createAdd(Ay, K),
                                   Dim, Elem);
        Value *Mul1 = B.createGep2D(A, B.createAdd(Dx, J), B.createAdd(Dy, I),
                                    Dim, Elem);
        Value *Mul2 = B.createGep2D(A, B.createAdd(Ax, I), B.createAdd(Ay, K),
                                    Dim, Elem);
        Value *Prod = B.createFMul(B.createLoad(Type::Float64, Mul1),
                                   B.createLoad(Type::Float64, Mul2));
        Value *Diff = B.createFSub(B.createLoad(Type::Float64, Dst), Prod);
        B.createStore(Diff, Dst);
      });
    });
  });
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  return F;
}

/// A rectangular block copy: B[i][j] = A[i][j] over [0,Block)^2 — the
/// Figure 1(b) shape (a block inside a larger row-major array) and the
/// Listing 2 multi-array situation at once.
Function *buildBlockCopy(Module &M) {
  auto *A = M.createGlobal("A", Dim * Dim * Elem);
  auto *C = M.createGlobal("C", Dim * Dim * Elem);
  Function *F = M.createFunction("copy", Type::Void, {Type::Int64});
  F->setTask(true);
  Value *Block = F->getArg(0);
  IRBuilder B(M, F->createBlock("entry"));
  emitCountedLoop(
      B, B.getInt(0), Block, B.getInt(1), "i", [&](IRBuilder &B, Value *I) {
        emitCountedLoop(B, B.getInt(0), Block, B.getInt(1), "j",
                        [&](IRBuilder &B, Value *J) {
                          Value *Src = B.createGep2D(A, I, J, Dim, Elem);
                          Value *SrcD = B.createGep2D(C, I, J, Dim, Elem);
                          Value *Sum = B.createFAdd(
                              B.createLoad(Type::Float64, Src),
                              B.createLoad(Type::Float64, SrcD));
                          B.createStore(Sum, Src);
                        });
      });
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  return F;
}

/// Sparse accesses whose convex hull is much larger than the union: the
/// first column plus the main diagonal.
Function *buildSparseKernel(Module &M) {
  auto *A = M.createGlobal("A", Dim * Dim * Elem);
  Function *F = M.createFunction("sparse", Type::Void, {Type::Int64});
  F->setTask(true);
  Value *N = F->getArg(0);
  IRBuilder B(M, F->createBlock("entry"));
  emitCountedLoop(
      B, B.getInt(0), N, B.getInt(1), "i", [&](IRBuilder &B, Value *I) {
        Value *Col0 = B.createGep2D(A, I, B.getInt(0), Dim, Elem);
        Value *Diag = B.createGep2D(A, I, I, Dim, Elem);
        Value *Sum = B.createFAdd(B.createLoad(Type::Float64, Col0),
                                  B.createLoad(Type::Float64, Diag));
        B.createStore(Sum, Col0);
      });
  B.createRet();
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  return F;
}

DaeOptions optsWithArgs(std::vector<std::int64_t> Args) {
  DaeOptions Opts;
  Opts.RepresentativeArgs = std::move(Args);
  return Opts;
}

TEST(AffineGeneratorTest, LuWholeMatrixScansFullSquare) {
  Module M;
  Function *Task = buildLuWholeMatrix(M);
  AccessPhaseResult R = generateAccessPhase(M, *Task, optsWithArgs({16}));

  ASSERT_TRUE(R.succeeded()) << R.Notes;
  EXPECT_EQ(R.Strategy, analysis::TaskClass::Affine);
  EXPECT_TRUE(R.UsedConvexUnion);
  // All four instructions read the whole 16x16 matrix at N=16.
  EXPECT_EQ(R.NOrig, 16 * 16);
  EXPECT_EQ(R.NConvUn, 16 * 16);
  EXPECT_EQ(R.NumClasses, 1u);
  EXPECT_EQ(R.NumPrefetchNests, 1u);

  CountVisitor V(*R.AccessFn);
  EXPECT_GE(V.Prefetches, 1u);
  EXPECT_EQ(V.Stores, 0u);
  EXPECT_EQ(V.Loads, 0u);
  // The 3-deep original is prefetched by a 2-deep nest (the headline of
  // section 5.1).
  EXPECT_EQ(V.Loops, 2u);
  EXPECT_TRUE(verifyFunction(*R.AccessFn).empty())
      << printFunction(*R.AccessFn);
}

TEST(AffineGeneratorTest, BlockKernelSeparatesParameterClasses) {
  Module M;
  Function *Task = buildBlockKernel(M);
  // Block=8 at offsets (16,16) / (32,32).
  AccessPhaseResult R =
      generateAccessPhase(M, *Task, optsWithArgs({8, 16, 16, 32, 32}));

  ASSERT_TRUE(R.succeeded()) << R.Notes;
  EXPECT_EQ(R.Strategy, analysis::TaskClass::Affine);
  // classA (Ax, Ay) and classD (Dx, Dy), as in Figure 2.
  EXPECT_EQ(R.NumClasses, 2u);
  EXPECT_TRUE(R.UsedConvexUnion);
  // classA hull: [Ax, Ax+B-1] x [Ay+1, Ay+B-1] = 8*7; classD is the strict
  // lower triangle of an 8x8 block = 28. Exactly NOrig in both.
  EXPECT_EQ(R.NOrig, 8 * 7 + 28);
  EXPECT_EQ(R.NConvUn, R.NOrig);
  CountVisitor V(*R.AccessFn);
  EXPECT_EQ(V.Stores, 0u);
  EXPECT_GE(V.Prefetches, 2u);
  EXPECT_TRUE(verifyFunction(*R.AccessFn).empty())
      << printFunction(*R.AccessFn);
}

TEST(AffineGeneratorTest, TwoArraysMergeIntoOneNest) {
  Module M;
  Function *Task = buildBlockCopy(M);
  AccessPhaseResult R = generateAccessPhase(M, *Task, optsWithArgs({8}));

  ASSERT_TRUE(R.succeeded()) << R.Notes;
  EXPECT_EQ(R.NumClasses, 2u); // A and C.
  // Identical Block x Block boxes merge into a single nest with two
  // prefetches in the body (Listing 2(b)).
  EXPECT_EQ(R.NumPrefetchNests, 1u);
  CountVisitor V(*R.AccessFn);
  EXPECT_EQ(V.Prefetches, 2u);
  EXPECT_EQ(V.Loops, 2u);
}

TEST(AffineGeneratorTest, MergingCanBeDisabled) {
  Module M;
  Function *Task = buildBlockCopy(M);
  DaeOptions Opts = optsWithArgs({8});
  Opts.MergeLoopNests = false;
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Notes;
  EXPECT_EQ(R.NumPrefetchNests, 2u);
}

TEST(AffineGeneratorTest, WideHullIsRejectedByCountGuard) {
  Module M;
  Function *Task = buildSparseKernel(M);
  AccessPhaseResult R = generateAccessPhase(M, *Task, optsWithArgs({16}));

  ASSERT_TRUE(R.succeeded()) << R.Notes;
  EXPECT_EQ(R.Strategy, analysis::TaskClass::Affine);
  // Column (16) + diagonal (16) - shared corner (1) = 31 accessed points;
  // the hull (a triangle) would cover far more, so the guard rejects it and
  // the generator scans the two shapes individually.
  EXPECT_FALSE(R.UsedConvexUnion);
  EXPECT_EQ(R.NOrig, 31);
  EXPECT_EQ(R.NConvUn, 32); // Column scan + diagonal scan, counted apart.
}

TEST(AffineGeneratorTest, HullSlackThresholdAcceptsWiderHulls) {
  Module M;
  Function *Task = buildSparseKernel(M);
  DaeOptions Opts = optsWithArgs({16});
  Opts.HullSlackThreshold = 1000; // Effectively disable the guard.
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Notes;
  EXPECT_TRUE(R.UsedConvexUnion);
  EXPECT_GT(R.NConvUn, R.NOrig); // The triangle over-prefetches.
}

TEST(AffineGeneratorTest, MemoryRangeModeOverPrefetchesBlocks) {
  // Figure 1(b): for a block inside a row-major array, the 1-D memory range
  // covers full rows between the first and last touched element, while the
  // convex union covers exactly the block.
  Module Ma, Mb;
  Function *TaskA = buildBlockCopy(Ma);
  Function *TaskB = buildBlockCopy(Mb);

  DaeOptions Convex = optsWithArgs({8});
  DaeOptions Range = optsWithArgs({8});
  Range.UseConvexUnion = false;

  AccessPhaseResult RC = generateAccessPhase(Ma, *TaskA, Convex);
  AccessPhaseResult RR = generateAccessPhase(Mb, *TaskB, Range);
  ASSERT_TRUE(RC.succeeded()) << RC.Notes;
  ASSERT_TRUE(RR.succeeded()) << RR.Notes;

  // Convex union: exactly the two 8x8 blocks.
  EXPECT_EQ(RC.NConvUn, 2 * 64);
  // Range analysis: rows 0..7 of a 64-wide array, per array:
  // 7*64 + 8 = 456 elements each.
  EXPECT_EQ(RR.NConvUn, 2 * (7 * 64 + 8));
  EXPECT_GT(RR.NConvUn, RC.NConvUn);
}

TEST(AffineGeneratorTest, CacheLineStrideReducesPrefetchCount) {
  Module M;
  Function *Task = buildBlockCopy(M);
  DaeOptions Opts = optsWithArgs({8});
  Opts.PrefetchPerCacheLine = true;
  Opts.CacheLineBytes = 64; // 8 doubles per line.
  AccessPhaseResult R = generateAccessPhase(M, *Task, Opts);
  ASSERT_TRUE(R.succeeded()) << R.Notes;
  // The innermost loop must advance by 8 elements: find a loop whose step
  // constant is 8.
  pm::FunctionAnalysisManager FAM;
  const analysis::LoopInfo &LI = FAM.getResult<pm::LoopAnalysis>(*R.AccessFn);
  bool FoundStride8 = false;
  for (const auto &L : LI.loops())
    if (L->isCanonical() && L->getStep() == 8)
      FoundStride8 = true;
  EXPECT_TRUE(FoundStride8) << printFunction(*R.AccessFn);
}

TEST(AffineGeneratorTest, AccessPhaseSharesTaskSignature) {
  Module M;
  Function *Task = buildLuWholeMatrix(M);
  AccessPhaseResult R = generateAccessPhase(M, *Task, optsWithArgs({16}));
  ASSERT_TRUE(R.succeeded());
  ASSERT_EQ(R.AccessFn->getNumArgs(), Task->getNumArgs());
  for (unsigned I = 0; I != Task->getNumArgs(); ++I)
    EXPECT_EQ(R.AccessFn->getArg(I)->getType(), Task->getArg(I)->getType());
  EXPECT_EQ(R.AccessFn->getName(), "lu.access");
  EXPECT_EQ(M.getFunction("lu.access"), R.AccessFn);
}

} // namespace
