//===- tests/poly/EhrhartTest.cpp - Ehrhart fitting tests -------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/Ehrhart.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::poly;

namespace {

/// Box [0, p-1] x [0, p-1] over (x0, x1, p).
Polyhedron paramSquare() {
  Polyhedron P(3);
  P.addLowerBound(0, 0);
  P.addInequality({-1, 0, 1}, -1); // x0 <= p - 1.
  P.addLowerBound(1, 0);
  P.addInequality({0, -1, 1}, -1); // x1 <= p - 1.
  return P;
}

/// Triangle 0 <= x1 <= x0 <= p - 1 over (x0, x1, p).
Polyhedron paramTriangle() {
  Polyhedron P(3);
  P.addLowerBound(0, 0);
  P.addInequality({-1, 0, 1}, -1);
  P.addLowerBound(1, 0);
  P.addInequality({1, -1, 0}, 0);
  return P;
}

TEST(EhrhartTest, SquareIsPSquared) {
  auto E = fitEhrhart(paramSquare(), /*ParamVar=*/2, /*PStart=*/1,
                      /*MaxDegree=*/2);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->degree(), 2u);
  EXPECT_EQ(E->coefficients()[2], Rational(1));
  EXPECT_EQ(E->coefficients()[1], Rational(0));
  EXPECT_EQ(E->coefficients()[0], Rational(0));
  EXPECT_EQ(E->evaluate(10), Rational(100));
}

TEST(EhrhartTest, TriangleIsBinomial) {
  auto E = fitEhrhart(paramTriangle(), 2, 1, 2);
  ASSERT_TRUE(E.has_value());
  // p(p+1)/2 = p^2/2 + p/2.
  EXPECT_EQ(E->coefficients()[2], Rational(1, 2));
  EXPECT_EQ(E->coefficients()[1], Rational(1, 2));
  EXPECT_EQ(E->evaluate(8), Rational(36));
  EXPECT_EQ(E->str(), "1/2*p^2 + 1/2*p");
}

TEST(EhrhartTest, SegmentIsLinear) {
  Polyhedron P(2); // (x, p): 0 <= x <= 2p.
  P.addLowerBound(0, 0);
  P.addInequality({-1, 2}, 0);
  auto E = fitEhrhart(P, 1, 1, 2);
  ASSERT_TRUE(E.has_value());
  EXPECT_EQ(E->degree(), 1u);
  EXPECT_EQ(E->evaluate(5), Rational(11)); // 0..10.
}

TEST(EhrhartTest, DegreeTooLowIsRejected) {
  // Fitting the square with a degree-1 polynomial fails holdout validation.
  auto E = fitEhrhart(paramSquare(), 2, 1, 1);
  EXPECT_FALSE(E.has_value());
}

TEST(EhrhartTest, UnboundedFamilyIsRejected) {
  Polyhedron P(2); // x >= p with no upper bound.
  P.addInequality({1, -1}, 0);
  EXPECT_FALSE(fitEhrhart(P, 1, 1, 1).has_value());
}

TEST(EhrhartPolynomialTest, EvaluationAndPrinting) {
  EhrhartPolynomial Poly({Rational(1), Rational(-2), Rational(3, 4)});
  // 3/4 p^2 - 2p + 1 at p = 4: 12 - 8 + 1 = 5.
  EXPECT_EQ(Poly.evaluate(4), Rational(5));
  EXPECT_EQ(Poly.str(), "3/4*p^2 - 2*p + 1");
  EhrhartPolynomial Zero({Rational(0)});
  EXPECT_EQ(Zero.str(), "0");
}

} // namespace
