//===- tests/poly/ConvexHullTest.cpp - Hull-of-union unit tests -----------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/ConvexHull.h"

#include <gtest/gtest.h>

using namespace dae::poly;

namespace {

Polyhedron box2D(std::int64_t XLo, std::int64_t XHi, std::int64_t YLo,
                 std::int64_t YHi) {
  Polyhedron P(2);
  P.addLowerBound(0, XLo);
  P.addUpperBound(0, XHi);
  P.addLowerBound(1, YLo);
  P.addUpperBound(1, YHi);
  return P;
}

TEST(ConvexHullTest, SingleMemberIsIdentity) {
  Polyhedron P = box2D(0, 4, 0, 4);
  Polyhedron H = convexHullOfUnion({P});
  EXPECT_EQ(H.countIntegerPoints().value(), 25);
}

TEST(ConvexHullTest, DisjointBoxesOnALine) {
  // [0,2] and [10,12] on x, same y: hull covers [0,12] x [0,1].
  Polyhedron A = box2D(0, 2, 0, 1);
  Polyhedron B = box2D(10, 12, 0, 1);
  Polyhedron H = convexHullOfUnion({A, B});
  EXPECT_EQ(H.countIntegerPoints().value(), 13 * 2);
  EXPECT_TRUE(H.contains({5, 0}));
  EXPECT_FALSE(H.contains({5, 2}));
}

TEST(ConvexHullTest, NestedBoxesGiveOuter) {
  Polyhedron Inner = box2D(1, 2, 1, 2);
  Polyhedron Outer = box2D(0, 4, 0, 4);
  Polyhedron H = convexHullOfUnion({Inner, Outer});
  EXPECT_EQ(H.countIntegerPoints().value(), 25);
}

TEST(ConvexHullTest, TriangleUnionDiagonal) {
  // Lower and upper triangles of a 5x5 square hull to the full square.
  Polyhedron Lower(2), Upper(2);
  for (Polyhedron *P : {&Lower, &Upper}) {
    P->addLowerBound(0, 0);
    P->addUpperBound(0, 4);
    P->addLowerBound(1, 0);
    P->addUpperBound(1, 4);
  }
  Lower.addInequality({1, -1}, 0);  // j <= i.
  Upper.addInequality({-1, 1}, 0);  // j >= i.
  Polyhedron H = convexHullOfUnion({Lower, Upper});
  EXPECT_EQ(H.countIntegerPoints().value(), 25);
}

TEST(ConvexHullTest, HullIsConvexSuperset) {
  // Two offset boxes produce a hexagonal hull; every member point is inside.
  Polyhedron A = box2D(0, 3, 0, 3);
  Polyhedron B = box2D(2, 6, 2, 6);
  Polyhedron H = convexHullOfUnion({A, B});
  for (const auto &Pt : A.enumerateIntegerPoints())
    EXPECT_TRUE(H.contains(Pt));
  for (const auto &Pt : B.enumerateIntegerPoints())
    EXPECT_TRUE(H.contains(Pt));
  // Hull of these two boxes excludes the far corners of the bounding box.
  EXPECT_FALSE(H.contains({0, 6}));
  EXPECT_FALSE(H.contains({6, 0}));
  // ... but contains points on the bridge between them.
  EXPECT_TRUE(H.contains({4, 4}));
}

TEST(ConvexHullTest, EmptyMembersAreIgnored) {
  Polyhedron Empty(2);
  Empty.addLowerBound(0, 5);
  Empty.addUpperBound(0, 0);
  Polyhedron A = box2D(0, 2, 0, 2);
  Polyhedron H = convexHullOfUnion({Empty, A});
  EXPECT_EQ(H.countIntegerPoints().value(), 9);
}

TEST(ConvexHullTest, SymbolicParameterDimension) {
  // Members over (i, N): 0 <= i < N and the singleton {i == N}. The hull in
  // the combined space must allow 0 <= i <= N. Slicing at N = 7 gives 8
  // points.
  Polyhedron A(2);
  A.addLowerBound(0, 0);
  A.addInequality({-1, 1}, -1); // i <= N - 1.
  Polyhedron B(2);
  B.addEquality({1, -1}, 0); // i == N.
  // Bound the parameter in both members so the test polytopes are bounded in
  // the lifted space slice we examine.
  for (Polyhedron *P : {&A, &B}) {
    P->addInequality({0, 1}, 0);    // N >= 0.
    P->addInequality({0, -1}, 100); // N <= 100.
  }
  Polyhedron H = convexHullOfUnion({A, B});
  Polyhedron At7 = H.instantiate(1, 7);
  EXPECT_EQ(At7.countIntegerPoints().value(), 8);
}

TEST(RangeHullTest, CoarserThanConvexHull) {
  // Two blocks on the diagonal (the Figure 2 situation): the range hull
  // (bounding box) covers the full square; the convex hull is the diagonal
  // band, strictly smaller.
  Polyhedron A = box2D(0, 3, 0, 3);
  Polyhedron B = box2D(10, 13, 10, 13);
  Polyhedron Box = rangeHull({A, B}, {0, 1});
  Polyhedron Hull = convexHullOfUnion({A, B});
  long long BoxCount = Box.countIntegerPoints().value();
  long long HullCount = Hull.countIntegerPoints().value();
  EXPECT_EQ(BoxCount, 14 * 14);
  EXPECT_LT(HullCount, BoxCount);
  EXPECT_TRUE(Box.contains({0, 13}));   // Box corner...
  EXPECT_FALSE(Hull.contains({0, 13})); // ...outside the hull.
}

TEST(RangeHullTest, FullMatrixMatchesHull) {
  // When the accesses already cover the whole matrix (Listing 1(a)),
  // range analysis and convex union agree (the paper's "efficient when the
  // whole array is accessed" case).
  Polyhedron A = box2D(0, 9, 0, 9);
  Polyhedron Box = rangeHull({A}, {0, 1});
  EXPECT_EQ(Box.countIntegerPoints().value(), 100);
}

} // namespace
