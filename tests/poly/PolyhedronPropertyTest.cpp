//===- tests/poly/PolyhedronPropertyTest.cpp - Randomized poly invariants --===//
//
// Part of daecc. Distributed under the MIT license.
//
// Seeded random polytopes checked against the library's algebraic
// invariants: counting == enumeration, projection is a sound
// over-approximation, instantiation commutes with membership, redundancy
// removal preserves the point set, and the convex hull of a union contains
// every member and is itself convex (midpoint closure on lattice points).
//
//===----------------------------------------------------------------------===//

#include "poly/ConvexHull.h"
#include "poly/Polyhedron.h"
#include "support/MathUtil.h"

#include <gtest/gtest.h>
#include <set>

using namespace dae;
using namespace dae::poly;

namespace {

/// Random 2-D polytope: a box [0, a] x [0, b] cut by up to two random
/// half-planes; always non-empty at the origin-ish corner.
Polyhedron randomPolytope(SplitMixRng &Rng) {
  Polyhedron P(2);
  P.addLowerBound(0, 0);
  P.addUpperBound(0, 3 + static_cast<std::int64_t>(Rng.nextBelow(12)));
  P.addLowerBound(1, 0);
  P.addUpperBound(1, 3 + static_cast<std::int64_t>(Rng.nextBelow(12)));
  unsigned Cuts = static_cast<unsigned>(Rng.nextBelow(3));
  for (unsigned I = 0; I != Cuts; ++I) {
    std::int64_t A = static_cast<std::int64_t>(Rng.nextBelow(5)) - 2;
    std::int64_t B = static_cast<std::int64_t>(Rng.nextBelow(5)) - 2;
    // Keep (0,0) feasible: constant >= 0.
    std::int64_t C = static_cast<std::int64_t>(Rng.nextBelow(20));
    P.addInequality({A, B}, C);
  }
  return P;
}

class PolyProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PolyProperty, CountMatchesEnumeration) {
  SplitMixRng Rng(GetParam() * 31337 + 1);
  Polyhedron P = randomPolytope(Rng);
  auto Count = P.countIntegerPoints();
  ASSERT_TRUE(Count.has_value());
  auto Points = P.enumerateIntegerPoints();
  EXPECT_EQ(*Count, static_cast<long long>(Points.size()));
  for (const auto &Pt : Points)
    EXPECT_TRUE(P.contains(Pt));
}

TEST_P(PolyProperty, ProjectionIsSoundOverApproximation) {
  SplitMixRng Rng(GetParam() * 31337 + 2);
  Polyhedron P = randomPolytope(Rng);
  Polyhedron Proj = P.eliminate(1); // Shadow on x0.
  for (const auto &Pt : P.enumerateIntegerPoints())
    EXPECT_TRUE(Proj.contains(Pt))
        << "projection lost (" << Pt[0] << ", " << Pt[1] << ")";
}

TEST_P(PolyProperty, InstantiationIsSliceMembership) {
  SplitMixRng Rng(GetParam() * 31337 + 3);
  Polyhedron P = randomPolytope(Rng);
  for (std::int64_t X = 0; X <= 4; ++X) {
    Polyhedron Slice = P.instantiate(0, X);
    for (std::int64_t Y = 0; Y <= 20; ++Y)
      EXPECT_EQ(Slice.contains({0, Y}), P.contains({X, Y}))
          << "slice mismatch at (" << X << ", " << Y << ")";
  }
}

TEST_P(PolyProperty, RedundancyRemovalPreservesPointSet) {
  SplitMixRng Rng(GetParam() * 31337 + 4);
  Polyhedron P = randomPolytope(Rng);
  Polyhedron Q = P.removeRedundant();
  EXPECT_LE(Q.getNumConstraints(), P.getNumConstraints());
  EXPECT_EQ(P.countIntegerPoints().value(), Q.countIntegerPoints().value());
  for (const auto &Pt : P.enumerateIntegerPoints())
    EXPECT_TRUE(Q.contains(Pt));
}

TEST_P(PolyProperty, HullContainsMembersAndIsMidpointClosed) {
  SplitMixRng Rng(GetParam() * 31337 + 5);
  Polyhedron A = randomPolytope(Rng);
  Polyhedron B = randomPolytope(Rng);
  Polyhedron H = convexHullOfUnion({A, B});

  auto PA = A.enumerateIntegerPoints();
  auto PB = B.enumerateIntegerPoints();
  for (const auto &Pt : PA)
    EXPECT_TRUE(H.contains(Pt));
  for (const auto &Pt : PB)
    EXPECT_TRUE(H.contains(Pt));

  // Midpoint closure: the integer midpoint of any two member points (when
  // integral) must lie inside the hull.
  auto Check = [&](const std::vector<std::int64_t> &P1,
                   const std::vector<std::int64_t> &P2) {
    if ((P1[0] + P2[0]) % 2 == 0 && (P1[1] + P2[1]) % 2 == 0) {
      EXPECT_TRUE(H.contains({(P1[0] + P2[0]) / 2, (P1[1] + P2[1]) / 2}));
    }
  };
  for (size_t I = 0; I < PA.size(); I += 7)
    for (size_t J = 0; J < PB.size(); J += 7)
      Check(PA[I], PB[J]);
}

TEST_P(PolyProperty, IntersectionIsContainedInBoth) {
  SplitMixRng Rng(GetParam() * 31337 + 6);
  Polyhedron A = randomPolytope(Rng);
  Polyhedron B = randomPolytope(Rng);
  Polyhedron I = Polyhedron::intersect(A, B);
  for (const auto &Pt : I.enumerateIntegerPoints()) {
    EXPECT_TRUE(A.contains(Pt));
    EXPECT_TRUE(B.contains(Pt));
  }
}

TEST_P(PolyProperty, EmptinessAgreesWithEnumeration) {
  SplitMixRng Rng(GetParam() * 31337 + 7);
  Polyhedron P = randomPolytope(Rng);
  // Cut with a random (possibly infeasible) constraint.
  std::int64_t A = static_cast<std::int64_t>(Rng.nextBelow(7)) - 3;
  std::int64_t B = static_cast<std::int64_t>(Rng.nextBelow(7)) - 3;
  std::int64_t C = static_cast<std::int64_t>(Rng.nextBelow(30)) - 20;
  P.addInequality({A, B}, C);
  bool AnyPoint = !P.enumerateIntegerPoints().empty();
  if (P.isEmpty()) {
    EXPECT_FALSE(AnyPoint) << "isEmpty() claimed empty but points exist";
  }
  // (The converse may differ: rational feasibility admits sets with no
  // integer points; enumeration is the integer ground truth.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyProperty, ::testing::Range(0u, 20u));

} // namespace
