//===- tests/poly/PolyhedronTest.cpp - Polyhedron unit tests --------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "poly/Polyhedron.h"

#include <gtest/gtest.h>

using namespace dae::poly;

namespace {

/// 0 <= x < N as a 1-D box with numeric N.
Polyhedron box1D(std::int64_t Lo, std::int64_t Hi) {
  Polyhedron P(1);
  P.addLowerBound(0, Lo);
  P.addUpperBound(0, Hi);
  return P;
}

TEST(PolyhedronTest, EmptyAndNonEmpty) {
  Polyhedron P = box1D(0, 9);
  EXPECT_FALSE(P.isEmpty());
  P.addUpperBound(0, -1); // x <= -1 contradicts x >= 0.
  EXPECT_TRUE(P.isEmpty());
}

TEST(PolyhedronTest, CountInterval) {
  EXPECT_EQ(box1D(0, 9).countIntegerPoints().value(), 10);
  EXPECT_EQ(box1D(5, 5).countIntegerPoints().value(), 1);
  EXPECT_EQ(box1D(7, 3).countIntegerPoints().value(), 0);
}

TEST(PolyhedronTest, CountRectangle) {
  Polyhedron P(2);
  P.addLowerBound(0, 0);
  P.addUpperBound(0, 3); // 4 values.
  P.addLowerBound(1, 2);
  P.addUpperBound(1, 6); // 5 values.
  EXPECT_EQ(P.countIntegerPoints().value(), 20);
}

TEST(PolyhedronTest, CountTriangle) {
  // 0 <= i <= 9, 0 <= j <= i: 10+9+...+1 = 55.
  Polyhedron P(2);
  P.addLowerBound(0, 0);
  P.addUpperBound(0, 9);
  P.addLowerBound(1, 0);
  P.addInequality({1, -1}, 0); // i - j >= 0.
  EXPECT_EQ(P.countIntegerPoints().value(), 55);
}

TEST(PolyhedronTest, CountRespectsLimit) {
  EXPECT_FALSE(box1D(0, 1000).countIntegerPoints(/*Limit=*/100).has_value());
}

TEST(PolyhedronTest, UnboundedCountFails) {
  Polyhedron P(1);
  P.addLowerBound(0, 0); // No upper bound.
  EXPECT_FALSE(P.countIntegerPoints().has_value());
}

TEST(PolyhedronTest, EliminateProjectsShadow) {
  // Triangle 0 <= j <= i <= 9 projected onto j gives 0 <= j <= 9.
  Polyhedron P(2);
  P.addLowerBound(0, 0);
  P.addUpperBound(0, 9);
  P.addLowerBound(1, 0);
  P.addInequality({1, -1}, 0);
  Polyhedron Q = P.eliminate(0);
  auto B = Q.integerBounds(1);
  EXPECT_EQ(B.Lo.value(), 0);
  EXPECT_EQ(B.Hi.value(), 9);
}

TEST(PolyhedronTest, InstantiateSubstitutes) {
  // Triangle with i fixed to 4: j in [0, 4].
  Polyhedron P(2);
  P.addLowerBound(0, 0);
  P.addUpperBound(0, 9);
  P.addLowerBound(1, 0);
  P.addInequality({1, -1}, 0);
  Polyhedron Q = P.instantiate(0, 4);
  EXPECT_EQ(Q.countIntegerPoints().value(), 5);
}

TEST(PolyhedronTest, IntegerTighteningOnAdd) {
  // 2x - 1 >= 0 tightens to x >= 1 over the integers.
  Polyhedron P(1);
  P.addInequality({2}, -1);
  auto B = P.integerBounds(0);
  EXPECT_EQ(B.Lo.value(), 1);
}

TEST(PolyhedronTest, RedundancyRemoval) {
  Polyhedron P = box1D(0, 9);
  P.addUpperBound(0, 100); // Redundant.
  P.addLowerBound(0, -50); // Redundant.
  Polyhedron Q = P.removeRedundant();
  EXPECT_EQ(Q.getNumConstraints(), 2u);
  EXPECT_EQ(Q.countIntegerPoints().value(), 10);
}

TEST(PolyhedronTest, ContainsChecksAllConstraints) {
  Polyhedron P(2);
  P.addLowerBound(0, 0);
  P.addUpperBound(0, 3);
  P.addLowerBound(1, 0);
  P.addInequality({1, -1}, 0);
  EXPECT_TRUE(P.contains({3, 3}));
  EXPECT_FALSE(P.contains({2, 3}));
  EXPECT_FALSE(P.contains({-1, 0}));
}

TEST(PolyhedronTest, EnumerateMatchesCount) {
  Polyhedron P(2);
  P.addLowerBound(0, 0);
  P.addUpperBound(0, 4);
  P.addLowerBound(1, 0);
  P.addInequality({1, -1}, 0);
  auto Points = P.enumerateIntegerPoints();
  EXPECT_EQ(static_cast<long long>(Points.size()),
            P.countIntegerPoints().value());
  for (const auto &Pt : Points)
    EXPECT_TRUE(P.contains(Pt));
}

TEST(PolyhedronTest, IntersectConjoins) {
  Polyhedron A = box1D(0, 10);
  Polyhedron B = box1D(5, 20);
  Polyhedron C = Polyhedron::intersect(A, B);
  EXPECT_EQ(C.countIntegerPoints().value(), 6); // 5..10
}

TEST(PolyhedronTest, EqualityConstraint) {
  Polyhedron P(2);
  P.addLowerBound(0, 0);
  P.addUpperBound(0, 9);
  P.addEquality({1, -1}, 0); // x1 == x0 (diagonal).
  EXPECT_EQ(P.countIntegerPoints().value(), 10);
}

/// Parameterized sweep: triangle counts follow n(n+1)/2.
class TriangleCountTest : public ::testing::TestWithParam<int> {};

TEST_P(TriangleCountTest, MatchesClosedForm) {
  int N = GetParam();
  Polyhedron P(2);
  P.addLowerBound(0, 0);
  P.addUpperBound(0, N - 1);
  P.addLowerBound(1, 0);
  P.addInequality({1, -1}, 0);
  EXPECT_EQ(P.countIntegerPoints().value(),
            static_cast<long long>(N) * (N + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriangleCountTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

} // namespace
