//===- tests/verify/VerifyTest.cpp - DAE correctness oracle tests -----------===//
//
// Part of daecc. Distributed under the MIT license.
//
// Exercises both halves of the verify/ oracle against deliberately broken
// generator output — the bug classes the oracle exists to catch:
//   * an access phase that keeps a live store (broken skeletonization) must
//     be flagged by the static AccessPhaseAudit AND fail the dynamic
//     differential's memory-image comparison;
//   * an access phase that covers only one of two access classes (a hull
//     that dropped an array) must pass purity but report coverage ~0.5,
//     well under the 0.9 gate;
// plus the positive path (a faithful prefetcher audits pure, runs pure, and
// covers everything) and the audit's call/loop-shape findings.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "pm/AnalysisManager.h"
#include "runtime/Runtime.h"
#include "verify/AccessPhaseAudit.h"
#include "verify/DifferentialChecker.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::ir;
using namespace dae::runtime;
using namespace dae::verify;

namespace {

constexpr std::int64_t N = 1 << 14; // 16 K doubles = 128 KiB per array.
constexpr std::int64_t Elem = 8;
constexpr unsigned NumTasks = 8;

/// Two-input streaming workload: Dst[i] = SrcA[i] + SrcB[i]. The faithful
/// access phase prefetches both sources; the broken variants each model one
/// generator bug class.
struct OracleFixture {
  Module M;
  Function *Exec = nullptr;
  sim::MachineConfig Cfg;

  OracleFixture() {
    auto *SrcA = M.createGlobal("SrcA", N * Elem);
    auto *SrcB = M.createGlobal("SrcB", N * Elem);
    auto *Dst = M.createGlobal("Dst", N * Elem);
    M.createGlobal("Scratch", 64);
    M.createGlobal("Unused", N * Elem);
    Exec = M.createFunction("sum2", Type::Void, {Type::Int64, Type::Int64});
    IRBuilder B(M, Exec->createBlock("entry"));
    emitCountedLoop(B, Exec->getArg(0), Exec->getArg(1), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Value *A = B.createLoad(Type::Float64, B.createGep1D(SrcA, I, Elem));
      Value *C = B.createLoad(Type::Float64, B.createGep1D(SrcB, I, Elem));
      B.createStore(B.createFAdd(A, C), B.createGep1D(Dst, I, Elem));
    });
    B.createRet();
  }

  /// A hand-built access phase: prefetches SrcA (always) and SrcB (unless
  /// \p DropSrcB — the "hull lost an access class" bug), and optionally
  /// keeps a store into Scratch (the "skeleton kept a store" bug).
  Function *makeAccess(const char *Name, bool DropSrcB, bool KeepStore) {
    Function *F =
        M.createFunction(Name, Type::Void, {Type::Int64, Type::Int64});
    IRBuilder B(M, F->createBlock("entry"));
    if (KeepStore)
      B.createStore(B.getFloat(123.0),
                    B.createGep1D(M.getGlobal("Scratch"), B.getInt(0), Elem));
    emitCountedLoop(B, F->getArg(0), F->getArg(1), B.getInt(8), "p",
                    [&](IRBuilder &B, Value *P) {
      B.createPrefetch(B.createGep1D(M.getGlobal("SrcA"), P, Elem));
      if (!DropSrcB)
        B.createPrefetch(B.createGep1D(M.getGlobal("SrcB"), P, Elem));
    });
    B.createRet();
    return F;
  }

  std::vector<Task> makeTasks(Function *Access) {
    std::vector<Task> Tasks;
    const std::int64_t Chunk = N / NumTasks;
    for (unsigned T = 0; T != NumTasks; ++T)
      Tasks.push_back({Exec,
                       Access,
                       {sim::RuntimeValue::ofInt(T * Chunk),
                        sim::RuntimeValue::ofInt((T + 1) * Chunk)},
                       0});
    return Tasks;
  }

  DifferentialSpec makeSpec() const {
    DifferentialSpec Spec;
    Spec.Init = [](sim::Memory &Mem, const sim::Loader &L) {
      std::uint64_t A = L.baseOf("SrcA"), B = L.baseOf("SrcB");
      for (std::int64_t I = 0; I != N; ++I) {
        Mem.storeF64(A + static_cast<std::uint64_t>(I * Elem),
                     static_cast<double>(I) + 0.25);
        Mem.storeF64(B + static_cast<std::uint64_t>(I * Elem),
                     static_cast<double>(I) - 0.75);
      }
    };
    Spec.OutputGlobals = {"Dst"};
    Spec.OutputSizes = {N * Elem};
    return Spec;
  }

  DifferentialResult runChecker(Function *Access) {
    sim::Loader L(M);
    DifferentialChecker Checker(Cfg, L, makeSpec());
    return Checker.check(makeTasks(Access));
  }
};

// --- Static half ---------------------------------------------------------

TEST(AccessPhaseAuditTest, FaithfulPhaseIsPure) {
  OracleFixture Fx;
  Function *Good = Fx.makeAccess("good", false, false);
  pm::FunctionAnalysisManager FAM;
  AuditReport R = auditAccessPhase(*Good, FAM);
  EXPECT_TRUE(R.pure()) << R.str();
}

TEST(AccessPhaseAuditTest, FlagsLiveStore) {
  OracleFixture Fx;
  Function *Bad = Fx.makeAccess("bad.store", false, true);
  pm::FunctionAnalysisManager FAM;
  AuditReport R = auditAccessPhase(*Bad, FAM);
  ASSERT_FALSE(R.pure());
  EXPECT_NE(R.str().find("store"), std::string::npos) << R.str();
}

TEST(AccessPhaseAuditTest, FlagsCall) {
  OracleFixture Fx;
  Function *Helper = Fx.M.createFunction("helper", Type::Void, {});
  {
    IRBuilder B(Fx.M, Helper->createBlock("entry"));
    B.createRet();
  }
  Function *Bad =
      Fx.M.createFunction("bad.call", Type::Void, {Type::Int64, Type::Int64});
  {
    IRBuilder B(Fx.M, Bad->createBlock("entry"));
    B.createCall(Helper, {});
    B.createRet();
  }
  pm::FunctionAnalysisManager FAM;
  AuditReport R = auditAccessPhase(*Bad, FAM);
  ASSERT_FALSE(R.pure());
  EXPECT_NE(R.str().find("call"), std::string::npos) << R.str();
}

TEST(AccessPhaseAuditTest, FlagsNonCanonicalLoop) {
  // A loop whose exit test is `iv != bound` with a hand-rolled backedge is
  // not recognized as canonical, so its termination is not provable.
  OracleFixture Fx;
  Function *Bad = Fx.M.createFunction("bad.loop", Type::Void, {Type::Int64});
  BasicBlock *Entry = Bad->createBlock("entry");
  BasicBlock *Header = Bad->createBlock("header");
  BasicBlock *Body = Bad->createBlock("body");
  BasicBlock *Exit = Bad->createBlock("exit");
  IRBuilder B(Fx.M, Entry);
  B.createBr(Header);
  B.setInsertBlock(Header);
  PhiInst *Iv = B.createPhi(Type::Int64);
  Iv->addIncoming(B.getInt(0), Entry);
  Value *Done = B.createCmp(CmpPred::EQ, Iv, Bad->getArg(0));
  B.createCondBr(Done, Exit, Body);
  B.setInsertBlock(Body);
  B.createPrefetch(B.createGep1D(Fx.M.getGlobal("SrcA"), Iv, Elem));
  Value *Next = B.createAdd(Iv, B.getInt(3));
  Iv->addIncoming(Next, Body);
  B.createBr(Header);
  B.setInsertBlock(Exit);
  B.createRet();

  pm::FunctionAnalysisManager FAM;
  AuditReport R = auditAccessPhase(*Bad, FAM);
  ASSERT_FALSE(R.pure());
  EXPECT_NE(R.str().find("loop"), std::string::npos) << R.str();
}

// --- Dynamic half --------------------------------------------------------

TEST(DifferentialCheckerTest, FaithfulPhasePassesAndCoversEverything) {
  OracleFixture Fx;
  DifferentialResult R = Fx.runChecker(Fx.makeAccess("good", false, false));
  EXPECT_TRUE(R.MemoryMatch);
  EXPECT_TRUE(R.OutputsMatch);
  EXPECT_TRUE(R.pure());
  EXPECT_EQ(R.DecoupledTasks, NumTasks);
  EXPECT_GT(R.BaselineExecMisses, 0u);
  EXPECT_DOUBLE_EQ(R.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(R.strictCoverage(), 1.0);
  EXPECT_DOUBLE_EQ(R.overshoot(), 0.0);
}

TEST(DifferentialCheckerTest, FlagsLiveStoreViaMemoryImage) {
  // The store targets Scratch, which no output array covers: the output
  // comparison alone would miss it, the memory-image hash must not.
  OracleFixture Fx;
  DifferentialResult R = Fx.runChecker(Fx.makeAccess("bad.store", false, true));
  EXPECT_FALSE(R.MemoryMatch);
  EXPECT_TRUE(R.OutputsMatch);
  EXPECT_FALSE(R.pure());
}

TEST(DifferentialCheckerTest, FlagsDroppedAccessClassAsLowCoverage) {
  // Prefetching only SrcA models a hull that lost the SrcB access class:
  // the phase stays pure but roughly half the baseline misses (all of
  // SrcB's) fall outside the access footprint — far below the 0.9 gate.
  OracleFixture Fx;
  DifferentialResult R = Fx.runChecker(Fx.makeAccess("bad.hull", true, false));
  EXPECT_TRUE(R.pure());
  EXPECT_LT(R.coverage(), 0.9);
  EXPECT_NEAR(R.coverage(), 0.5, 0.1);
  EXPECT_NEAR(R.strictCoverage(), 0.5, 0.1);
}

TEST(DifferentialCheckerTest, FootprintCoverageSpansTasks) {
  // An access phase that prefetches a rotated, double-width SrcA window
  // instead of its own task's chunk: per-task (strict) coverage collapses,
  // but the union of all phases still blankets SrcA, so footprint coverage
  // counts every SrcA miss as covered (and every SrcB miss as not).
  OracleFixture Fx;
  Function *F = Fx.M.createFunction("rotated.window", Type::Void,
                                    {Type::Int64, Type::Int64});
  {
    IRBuilder B(Fx.M, F->createBlock("entry"));
    Value *Lo = B.createSRem(B.createMul(F->getArg(0), B.getInt(2)),
                             B.getInt(N));
    emitCountedLoop(B, Lo, B.createAdd(Lo, B.getInt(2 * (N / NumTasks))),
                    B.getInt(8), "p", [&](IRBuilder &B, Value *P) {
      B.createPrefetch(B.createGep1D(Fx.M.getGlobal("SrcA"), P, Elem));
    });
    B.createRet();
  }
  DifferentialResult R = Fx.runChecker(F);
  EXPECT_TRUE(R.pure());
  EXPECT_NEAR(R.coverage(), 0.5, 0.1) << "SrcA in footprint, SrcB not";
  EXPECT_LT(R.strictCoverage(), 0.2) << "own-chunk matching must collapse";
}

TEST(DifferentialCheckerTest, NoDecoupledTasksReportsVacuousSuccess) {
  OracleFixture Fx;
  DifferentialResult R = Fx.runChecker(nullptr);
  EXPECT_TRUE(R.pure());
  EXPECT_EQ(R.DecoupledTasks, 0u);
  EXPECT_EQ(R.BaselineExecMisses, 0u);
  EXPECT_DOUBLE_EQ(R.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(R.overshoot(), 0.0);
}

TEST(DifferentialCheckerTest, OvershootCountsUnusedLines) {
  // Prefetch both sources plus the Unused array, which no execute phase
  // ever touches: a third of the prefetched lines are pure overshoot.
  OracleFixture Fx;
  Function *F = Fx.M.createFunction("over", Type::Void,
                                    {Type::Int64, Type::Int64});
  {
    IRBuilder B(Fx.M, F->createBlock("entry"));
    emitCountedLoop(B, F->getArg(0), F->getArg(1), B.getInt(8), "p",
                    [&](IRBuilder &B, Value *P) {
      B.createPrefetch(B.createGep1D(Fx.M.getGlobal("SrcA"), P, Elem));
      B.createPrefetch(B.createGep1D(Fx.M.getGlobal("SrcB"), P, Elem));
      B.createPrefetch(B.createGep1D(Fx.M.getGlobal("Unused"), P, Elem));
    });
    B.createRet();
  }
  DifferentialResult R = Fx.runChecker(F);
  EXPECT_TRUE(R.pure());
  EXPECT_DOUBLE_EQ(R.coverage(), 1.0);
  EXPECT_NEAR(R.overshoot(), 1.0 / 3.0, 0.05);
}

} // namespace
