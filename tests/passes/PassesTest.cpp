//===- tests/passes/PassesTest.cpp - Classical pass unit tests --------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/LoopInfo.h"
#include "pm/Analyses.h"
#include "ir/IRBuilder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "passes/Passes.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace dae;
using namespace dae::ir;
using namespace dae::passes;

namespace {

size_t countInsts(const Function &F) { return F.instructionCount(); }

TEST(DCETest, RemovesDeadChains) {
  Module M;
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  Value *A = B.createAdd(F->getArg(0), M.getInt(1));
  Value *Bv = B.createMul(A, M.getInt(2));
  B.createXor(Bv, M.getInt(3)); // Dead chain of three.
  B.createRet();
  EXPECT_EQ(countInsts(*F), 4u);
  EXPECT_TRUE(runDCE(*F));
  EXPECT_EQ(countInsts(*F), 1u); // Only ret.
}

TEST(DCETest, KeepsSideEffects) {
  Module M;
  auto *G = M.createGlobal("g", 64);
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  Value *P = B.createGep1D(G, F->getArg(0), 8);
  B.createStore(M.getInt(1), P);
  B.createPrefetch(P);
  B.createLoad(Type::Int64, P); // Dead load: removable.
  B.createRet();
  runDCE(*F);
  unsigned Stores = 0, Prefetches = 0, Loads = 0;
  for (const auto &BB : *F)
    for (const auto &I : *BB) {
      Stores += isa<StoreInst>(I.get());
      Prefetches += isa<PrefetchInst>(I.get());
      Loads += isa<LoadInst>(I.get());
    }
  EXPECT_EQ(Stores, 1u);
  EXPECT_EQ(Prefetches, 1u);
  EXPECT_EQ(Loads, 0u);
}

TEST(ConstantFoldingTest, FoldsArithmeticAndIdentities) {
  Module M;
  auto *G = M.createGlobal("g", 64);
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  Value *C = B.createAdd(M.getInt(2), M.getInt(3)); // -> 5.
  Value *Id = B.createMul(F->getArg(0), M.getInt(1)); // -> arg0.
  Value *Sum = B.createAdd(C, Id);
  B.createStore(Sum, B.createGep1D(G, M.getInt(0), 8));
  B.createRet();

  EXPECT_TRUE(runConstantFolding(*F));
  // Sum must now read (5 + arg0) with the folded constant.
  auto *SumI = cast<Instruction>(Sum);
  bool HasConst5 = false;
  for (Value *Op : SumI->operands())
    if (auto *CI = dyn_cast<ConstantInt>(Op))
      HasConst5 = CI->getValue() == 5;
  EXPECT_TRUE(HasConst5) << printFunction(*F);
}

TEST(SimplifyCFGTest, FoldsConstantBranchAndPrunes) {
  Module M;
  auto *G = M.createGlobal("g", 64);
  Function *F = M.createFunction("f", Type::Void, {});
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Dead = F->createBlock("dead");
  BasicBlock *Live = F->createBlock("live");
  IRBuilder B(M, Entry);
  B.createCondBr(M.getInt(0), Dead, Live); // Always false.
  B.setInsertBlock(Dead);
  B.createStore(M.getInt(1), B.createGep1D(G, M.getInt(0), 8));
  B.createBr(Live);
  B.setInsertBlock(Live);
  B.createRet();

  EXPECT_TRUE(runSimplifyCFG(*F));
  // Dead block removed, blocks merged.
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  for (const auto &BB : *F)
    EXPECT_NE(BB->getName(), "dead");
}

TEST(InlinerTest, InlinesAndRemovesCall) {
  Module M;
  Function *Callee = M.createFunction("sq", Type::Int64, {Type::Int64});
  {
    IRBuilder B(M, Callee->createBlock("entry"));
    B.createRet(B.createMul(Callee->getArg(0), Callee->getArg(0)));
  }
  auto *G = M.createGlobal("g", 64);
  Function *F = M.createFunction("caller", Type::Void, {Type::Int64});
  {
    IRBuilder B(M, F->createBlock("entry"));
    Value *R = B.createCall(Callee, {F->getArg(0)});
    B.createStore(R, B.createGep1D(G, M.getInt(0), 8));
    B.createRet();
  }
  EXPECT_EQ(runInliner(*F), 1u);
  for (const auto &BB : *F)
    for (const auto &I : *BB)
      EXPECT_FALSE(isa<CallInst>(I.get()));
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
}

TEST(InlinerTest, RespectsNoInlineAndRecursion) {
  Module M;
  Function *Ext = M.createFunction("ext", Type::Int64, {Type::Int64});
  Ext->setNoInline(true);
  {
    IRBuilder B(M, Ext->createBlock("entry"));
    B.createRet(Ext->getArg(0));
  }
  Function *Rec = M.createFunction("rec", Type::Int64, {Type::Int64});
  {
    IRBuilder B(M, Rec->createBlock("entry"));
    B.createRet(B.createCall(Rec, {Rec->getArg(0)}));
  }
  auto *G = M.createGlobal("g", 64);
  Function *F = M.createFunction("caller", Type::Void, {Type::Int64});
  {
    IRBuilder B(M, F->createBlock("entry"));
    Value *A = B.createCall(Ext, {F->getArg(0)});
    Value *Bv = B.createCall(Rec, {A});
    B.createStore(Bv, B.createGep1D(G, M.getInt(0), 8));
    B.createRet();
  }
  EXPECT_EQ(runInliner(*F), 0u);
  EXPECT_FALSE(allCallsInlinable(*F));
}

TEST(InlinerTest, InlinesLoopsInCallee) {
  Module M;
  auto *G = M.createGlobal("g", 8192);
  Function *Callee = M.createFunction("fill", Type::Void, {Type::Int64});
  {
    IRBuilder B(M, Callee->createBlock("entry"));
    emitCountedLoop(B, B.getInt(0), Callee->getArg(0), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
                      B.createStore(I, B.createGep1D(G, I, 8));
                    });
    B.createRet();
  }
  Function *F = M.createFunction("caller", Type::Void, {Type::Int64});
  {
    IRBuilder B(M, F->createBlock("entry"));
    B.createCall(Callee, {F->getArg(0)});
    B.createCall(Callee, {F->getArg(0)});
    B.createRet();
  }
  EXPECT_EQ(runInliner(*F), 2u);
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  pm::FunctionAnalysisManager FAM;
  EXPECT_EQ(FAM.getResult<pm::LoopAnalysis>(*F).loops().size(), 2u);
}

TEST(LoopDeletionTest, RemovesSideEffectFreeLoop) {
  Module M;
  auto *G = M.createGlobal("g", 8192);
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  // Dead loop: computes values nobody uses.
  emitCountedLoop(B, B.getInt(0), F->getArg(0), B.getInt(1), "dead",
                  [&](IRBuilder &B, Value *I) { B.createMul(I, I); });
  // Live loop: stores.
  emitCountedLoop(B, B.getInt(0), F->getArg(0), B.getInt(1), "live",
                  [&](IRBuilder &B, Value *I) {
                    B.createStore(I, B.createGep1D(G, I, 8));
                  });
  B.createRet();

  runDCE(*F);
  EXPECT_TRUE(runLoopDeletion(*F));
  pm::FunctionAnalysisManager FAM;
  EXPECT_EQ(FAM.getResult<pm::LoopAnalysis>(*F).loops().size(), 1u);
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
}

TEST(OptimizeFunctionTest, ReachesFixpointAndStaysValid) {
  Module M;
  auto *G = M.createGlobal("g", 8192);
  Function *Helper = M.createFunction("h", Type::Int64, {Type::Int64});
  {
    IRBuilder B(M, Helper->createBlock("entry"));
    B.createRet(B.createAdd(Helper->getArg(0), M.getInt(0))); // x + 0.
  }
  Function *F = M.createFunction("f", Type::Void, {Type::Int64});
  {
    IRBuilder B(M, F->createBlock("entry"));
    Value *V = B.createCall(Helper, {F->getArg(0)});
    Value *Folded = B.createMul(V, M.getInt(1));
    B.createStore(Folded, B.createGep1D(G, M.getInt(0), 8));
    B.createRet();
  }
  optimizeFunction(*F);
  EXPECT_TRUE(verifyFunction(*F).empty()) << printFunction(*F);
  // After inlining + folding, the store writes arg0 directly.
  for (const auto &BB : *F)
    for (const auto &I : *BB)
      if (auto *St = dyn_cast<StoreInst>(I.get())) {
        EXPECT_EQ(St->getValue(), F->getArg(0)) << printFunction(*F);
      }
}

} // namespace
