//===- tests/sim/BackendDifferentialTest.cpp - Cross-backend differential --===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Differential testing of the functional execution backends
// (MachineConfig::Backend): the reference switch interpreter, the
// register-allocated direct-threaded bytecode backend, and the native
// codegen backend must produce bit-identical observables on every paper
// workload — RunProfiles (every PhaseStats field, EXPECT_EQ on doubles
// included), ordered AccessTraces, final memory images, and output
// snapshots — across scheme (CAE, Manual DAE, Auto DAE) and host thread
// count. Any divergence is a backend bug, not noise: both lowerings are
// required to preserve FP addend order, memory-model callback order, and
// the exact RuntimeValue write patterns of the switch interpreter.
//
//===----------------------------------------------------------------------===//

#include "harness/Harness.h"
#include "runtime/Runtime.h"
#include "sim/AccessTrace.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <vector>

using namespace dae;
using namespace dae::runtime;
using namespace dae::sim;

namespace {

void expectStatsEqual(const PhaseStats &A, const PhaseStats &B,
                      const char *What, size_t TaskIdx) {
  EXPECT_EQ(A.Instructions, B.Instructions) << What << " task " << TaskIdx;
  EXPECT_EQ(A.ComputeCycles, B.ComputeCycles) << What << " task " << TaskIdx;
  EXPECT_EQ(A.StallNs, B.StallNs) << What << " task " << TaskIdx;
  EXPECT_EQ(A.Loads, B.Loads) << What << " task " << TaskIdx;
  EXPECT_EQ(A.Stores, B.Stores) << What << " task " << TaskIdx;
  EXPECT_EQ(A.Prefetches, B.Prefetches) << What << " task " << TaskIdx;
  EXPECT_EQ(A.L1Hits, B.L1Hits) << What << " task " << TaskIdx;
  EXPECT_EQ(A.L2Hits, B.L2Hits) << What << " task " << TaskIdx;
  EXPECT_EQ(A.LLCHits, B.LLCHits) << What << " task " << TaskIdx;
  EXPECT_EQ(A.MemAccesses, B.MemAccesses) << What << " task " << TaskIdx;
}

void expectProfilesEqual(const RunProfile &A, const RunProfile &B) {
  EXPECT_EQ(A.NumCores, B.NumCores);
  ASSERT_EQ(A.Tasks.size(), B.Tasks.size());
  for (size_t I = 0; I != A.Tasks.size(); ++I) {
    const TaskProfile &TA = A.Tasks[I];
    const TaskProfile &TB = B.Tasks[I];
    EXPECT_EQ(TA.Core, TB.Core) << "task " << I;
    EXPECT_EQ(TA.Wave, TB.Wave) << "task " << I;
    EXPECT_EQ(TA.HasAccess, TB.HasAccess) << "task " << I;
    expectStatsEqual(TA.Access, TB.Access, "access", I);
    expectStatsEqual(TA.Execute, TB.Execute, "execute", I);
  }
}

/// End-to-end: each paper workload through the full harness (CAE, Manual
/// DAE, Auto DAE) under every backend, at 1 and 4 sim threads. Profiles and
/// raw output snapshots must match bit for bit.
class BackendHarnessDifferential
    : public ::testing::TestWithParam<const char *> {};

TEST_P(BackendHarnessDifferential, SchemesMatchAcrossBackends) {
  auto RunWith = [&](SimBackend Backend, unsigned Threads) {
    MachineConfig Cfg;
    Cfg.Backend = Backend;
    Cfg.SimThreads = Threads;
    auto W = workloads::buildByName(GetParam(), workloads::Scale::Test);
    return harness::runApp(*W, Cfg);
  };
  for (unsigned Threads : {1u, 4u}) {
    harness::AppResult Ref = RunWith(SimBackend::Switch, Threads);
    EXPECT_TRUE(Ref.OutputsMatch) << "switch, " << Threads << " threads";
    for (SimBackend Backend : {SimBackend::Threaded, SimBackend::Native}) {
      harness::AppResult Got = RunWith(Backend, Threads);
      EXPECT_TRUE(Got.OutputsMatch)
          << simBackendName(Backend) << ", " << Threads << " threads";
      expectProfilesEqual(Ref.Cae, Got.Cae);
      expectProfilesEqual(Ref.Manual, Got.Manual);
      expectProfilesEqual(Ref.Auto, Got.Auto);
      EXPECT_EQ(Ref.CaeOutputs, Got.CaeOutputs)
          << simBackendName(Backend) << ", " << Threads << " threads";
      EXPECT_EQ(Ref.ManualOutputs, Got.ManualOutputs)
          << simBackendName(Backend) << ", " << Threads << " threads";
      EXPECT_EQ(Ref.AutoOutputs, Got.AutoOutputs)
          << simBackendName(Backend) << ", " << Threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BackendHarnessDifferential,
                         ::testing::Values("lu", "cholesky", "fft", "lbm",
                                           "libq", "cigar", "cg"));

/// Runtime-level: the Manual-DAE task set (both phases per task) executed by
/// TaskRuntime under both backends must leave bit-identical memory images in
/// addition to identical profiles — imageHash covers every byte the
/// functional pass wrote, not just the declared output globals.
class BackendRuntimeDifferential
    : public ::testing::TestWithParam<const char *> {};

TEST_P(BackendRuntimeDifferential, ProfilesAndMemoryImagesMatch) {
  auto W = workloads::buildByName(GetParam(), workloads::Scale::Test);
  Loader L(*W->M);
  std::vector<Task> Tasks = W->Tasks;
  for (Task &T : Tasks) {
    auto It = W->ManualAccess.find(T.Execute);
    if (It != W->ManualAccess.end())
      T.Access = It->second;
  }

  auto RunWith = [&](SimBackend Backend, unsigned Threads,
                     std::uint64_t *HashOut) {
    MachineConfig Cfg;
    Cfg.Backend = Backend;
    Cfg.SimThreads = Threads;
    Memory Mem;
    W->Init(Mem, L);
    TaskRuntime RT(Cfg, Mem, L);
    RunProfile P = RT.execute(Tasks, /*RunAccess=*/true);
    *HashOut = Mem.imageHash();
    return P;
  };

  for (unsigned Threads : {1u, 4u}) {
    std::uint64_t RefHash = 0;
    RunProfile Ref = RunWith(SimBackend::Switch, Threads, &RefHash);
    for (SimBackend Backend : {SimBackend::Threaded, SimBackend::Native}) {
      std::uint64_t GotHash = 0;
      RunProfile Got = RunWith(Backend, Threads, &GotHash);
      expectProfilesEqual(Ref, Got);
      EXPECT_EQ(RefHash, GotHash)
          << simBackendName(Backend) << ", " << Threads << " threads";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BackendRuntimeDifferential,
                         ::testing::Values("lu", "cholesky", "fft", "lbm",
                                           "libq", "cigar", "cg"));

/// Interpreter-level: runTraced under both backends must record the same
/// ordered access-event stream (kind + byte address per event), return the
/// same cache-independent PhaseStats, and leave the same memory image. This
/// pins the exact event order the runtime's single-threaded replay depends
/// on — a reordered (even if complete) trace would change cache timing.
class BackendTraceDifferential
    : public ::testing::TestWithParam<const char *> {};

TEST_P(BackendTraceDifferential, AccessTracesMatch) {
  auto RunWith = [&](SimBackend Backend, std::vector<AccessTrace> *Traces,
                     std::vector<PhaseStats> *Stats) {
    MachineConfig Cfg;
    Cfg.Backend = Backend;
    auto W = workloads::buildByName(GetParam(), workloads::Scale::Test);
    Loader L(*W->M);
    Memory Mem;
    W->Init(Mem, L);
    CompiledProgram Prog(Cfg, L);
    for (const Task &T : W->Tasks)
      Prog.add(*T.Execute);
    Interpreter Interp(Cfg, Mem, L, &Prog);
    for (const Task &T : W->Tasks) {
      Traces->emplace_back();
      Stats->push_back(Interp.runTraced(*T.Execute, T.Args, Traces->back()));
    }
    return Mem.imageHash();
  };

  std::vector<AccessTrace> RefTraces;
  std::vector<PhaseStats> RefStats;
  std::uint64_t RefHash = RunWith(SimBackend::Switch, &RefTraces, &RefStats);
  for (SimBackend Backend : {SimBackend::Threaded, SimBackend::Native}) {
    std::vector<AccessTrace> GotTraces;
    std::vector<PhaseStats> GotStats;
    std::uint64_t GotHash = RunWith(Backend, &GotTraces, &GotStats);

    EXPECT_EQ(RefHash, GotHash) << simBackendName(Backend);
    ASSERT_EQ(RefTraces.size(), GotTraces.size());
    for (size_t I = 0; I != RefTraces.size(); ++I) {
      expectStatsEqual(RefStats[I], GotStats[I], simBackendName(Backend), I);
      EXPECT_EQ(RefTraces[I].events(), GotTraces[I].events())
          << simBackendName(Backend) << " trace of task " << I;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, BackendTraceDifferential,
                         ::testing::Values("lu", "cholesky", "fft", "lbm",
                                           "libq", "cigar", "cg"));

} // namespace
