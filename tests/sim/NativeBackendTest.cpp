//===- tests/sim/NativeBackendTest.cpp - Native backend edge cases ---------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Edge cases of the native codegen backend that the cross-backend
// differential suite (BackendDifferentialTest.cpp) does not reach: code
// storage across many compiled functions, W^X protection of the JIT buffer,
// the C-emission fallback mode, and — most important — the rejection path:
// a function the lowerer cannot compile must fall back to the threaded
// interpreter bit-identically, never miscompile, and must die loudly under
// the AbortOnUnsupported testing hook.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "sim/Bytecode.h"
#include "sim/Interpreter.h"
#include "sim/Memory.h"
#include "sim/NativeCodegen.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace dae;
using namespace dae::ir;
using namespace dae::sim;

namespace {

/// Builds fn_k(x) = x * (k + 2) + k with a load, a store and an FP round
/// trip, so every compiled function exercises translation, trace emission
/// and both register classes. Returns the function; results land in the
/// global \p Out (8 bytes at index K of "Out").
Function *buildFn(Module &M, GlobalVariable *Out, unsigned K) {
  char Name[32];
  std::snprintf(Name, sizeof(Name), "fn_%u", K);
  Function *F = M.createFunction(Name, Type::Int64, {Type::Int64});
  IRBuilder B(M, F->createBlock("entry"));
  Value *Scaled = B.createBinOp(
      BinOp::Mul, F->getArg(0), M.getInt(static_cast<std::int64_t>(K) + 2));
  Value *Sum = B.createBinOp(BinOp::Add, Scaled,
                             M.getInt(static_cast<std::int64_t>(K)));
  // FP round trip: (double)Sum * 1.5 back to int.
  Value *D = B.createCast(CastOp::SIToFP, Sum);
  Value *Scaled2 = B.createBinOp(BinOp::FMul, D, M.getFloat(1.5));
  Value *I2 = B.createCast(CastOp::FPToSI, Scaled2);
  Value *Slot = B.createGep1D(Out, M.getInt(K), 8);
  B.createStore(I2, Slot);
  Value *Back = B.createLoad(Type::Int64, Slot);
  B.createRet(B.createBinOp(BinOp::Add, Back, M.getInt(1)));
  return F;
}

/// Runs \p F under \p Backend in a fresh memory/cache world and returns
/// (return value, profile, image hash).
struct RunResult {
  RuntimeValue Ret;
  PhaseStats Stats;
  std::uint64_t Hash;
};

RunResult runUnder(SimBackend Backend, Module &M, Function &F,
                   std::int64_t Arg) {
  MachineConfig Cfg;
  Cfg.Backend = Backend;
  Loader L(M);
  Memory Mem;
  CacheHierarchy Caches(Cfg, 1);
  Interpreter Interp(Cfg, Mem, Caches, L);
  RunResult R;
  R.Stats = Interp.run(F, 0, {RuntimeValue::ofInt(Arg)}, &R.Ret);
  R.Hash = Mem.imageHash();
  return R;
}

void expectSameRun(const RunResult &A, const RunResult &B, const char *What) {
  EXPECT_EQ(A.Ret.I, B.Ret.I) << What;
  EXPECT_EQ(A.Hash, B.Hash) << What;
  EXPECT_EQ(A.Stats.Instructions, B.Stats.Instructions) << What;
  EXPECT_EQ(A.Stats.ComputeCycles, B.Stats.ComputeCycles) << What;
  EXPECT_EQ(A.Stats.Loads, B.Stats.Loads) << What;
  EXPECT_EQ(A.Stats.Stores, B.Stats.Stores) << What;
  EXPECT_EQ(A.Stats.L1Hits, B.Stats.L1Hits) << What;
  EXPECT_EQ(A.Stats.MemAccesses, B.Stats.MemAccesses) << What;
}

/// Compiling many distinct functions must yield many live code objects —
/// each with its own executable storage — that all execute correctly while
/// held simultaneously (the CompiledProgram holds every function of a
/// workload at once).
TEST(NativeBackend, CodeBufferGrowthAcrossManyFunctions) {
  constexpr unsigned N = 48;
  Module M;
  auto *Out = M.createGlobal("Out", N * 8);
  std::vector<Function *> Fns;
  for (unsigned K = 0; K != N; ++K)
    Fns.push_back(buildFn(M, Out, K));

  MachineConfig Cfg;
  Cfg.Backend = SimBackend::Native;
  Loader L(M);
  CompiledProgram Prog(Cfg, L);
  for (Function *F : Fns)
    Prog.add(*F);

  unsigned Compiled = 0;
  for (Function *F : Fns)
    if (const native::NativeCode *NC = Prog.lookupNative(*F)) {
      ++Compiled;
      if (NC->isJit()) {
        EXPECT_NE(NC->codeAddr(), nullptr);
        EXPECT_GT(NC->codeSize(), 0u);
      }
    }
  // On a host with a working mode every function must have compiled; with
  // no usable mode the backend still runs (threaded fallback), but this
  // test's point is the code storage, so require compilation.
  EXPECT_EQ(Compiled, N);

  // All functions execute correctly while every code object is live.
  Memory Mem;
  CacheHierarchy Caches(Cfg, 1);
  Interpreter Interp(Cfg, Mem, Caches, L, &Prog);
  for (unsigned K = 0; K != N; ++K) {
    RuntimeValue Ret;
    Interp.run(*Fns[K], 0, {RuntimeValue::ofInt(7)}, &Ret);
    const std::int64_t Expect =
        static_cast<std::int64_t>(
            static_cast<double>(7 * (static_cast<std::int64_t>(K) + 2) + K) *
            1.5) +
        1;
    EXPECT_EQ(Ret.I, Expect) << "fn_" << K;
  }
}

/// The JIT buffer must be W^X: readable and executable, never writable,
/// once published. Verified against the kernel's own view (/proc/self/maps);
/// skipped when the host compiles through the C-emission fallback.
TEST(NativeBackend, JitBufferIsWxProtected) {
  Module M;
  auto *Out = M.createGlobal("Out", 8);
  Function *F = buildFn(M, Out, 0);
  Loader L(M);
  MachineConfig Cfg;
  auto BF = bc::lower(*F, L, Cfg);
  std::shared_ptr<const native::NativeCode> NC = native::compile(*BF);
  if (!NC || !NC->isJit())
    GTEST_SKIP() << "host uses the C-emission mode (no JIT buffer to check)";

  std::FILE *Maps = std::fopen("/proc/self/maps", "r");
  if (!Maps)
    GTEST_SKIP() << "/proc/self/maps unavailable";
  const std::uintptr_t Addr =
      reinterpret_cast<std::uintptr_t>(NC->codeAddr());
  bool Found = false;
  char Line[512];
  while (std::fgets(Line, sizeof(Line), Maps)) {
    unsigned long long Lo = 0, Hi = 0;
    char Perms[8] = {0};
    if (std::sscanf(Line, "%llx-%llx %7s", &Lo, &Hi, Perms) != 3)
      continue;
    if (Addr < Lo || Addr >= Hi)
      continue;
    Found = true;
    EXPECT_EQ(Perms[0], 'r') << Line;
    EXPECT_EQ(Perms[1], '-') << "JIT buffer writable after publish: " << Line;
    EXPECT_EQ(Perms[2], 'x') << Line;
    break;
  }
  std::fclose(Maps);
  EXPECT_TRUE(Found) << "JIT buffer not in /proc/self/maps";
}

/// The C-emission mode (DAECC_NATIVE_MODE=cemit; auto-selected under
/// sanitizers and on non-x86-64 hosts) must produce the same bits as the
/// reference backend.
TEST(NativeBackend, CEmissionFallbackMatchesReference) {
  Module M;
  auto *Out = M.createGlobal("Out", 4 * 8);
  Function *F = buildFn(M, Out, 3);
  Loader L(M);
  MachineConfig Cfg;
  auto BF = bc::lower(*F, L, Cfg);

  native::Options Opts;
  Opts.LowerMode = native::Mode::Cemit;
  std::shared_ptr<const native::NativeCode> NC = native::compile(*BF, Opts);
  if (!NC)
    GTEST_SKIP() << "no host C compiler available for the cemit mode";
  EXPECT_FALSE(NC->isJit());
  EXPECT_NE(NC->fused(), nullptr);
  EXPECT_NE(NC->traced(), nullptr);

  // End to end through the interpreter, pinned to cemit via the env knob.
  setenv("DAECC_NATIVE_MODE", "cemit", 1);
  RunResult Ref = runUnder(SimBackend::Switch, M, *F, 11);
  RunResult Got = runUnder(SimBackend::Native, M, *F, 11);
  unsetenv("DAECC_NATIVE_MODE");
  expectSameRun(Ref, Got, "cemit vs switch");
}

/// A function containing an opcode the lowerer rejects (here forced via
/// DAECC_NATIVE_REJECT_OP) must run through the threaded fallback with
/// bit-identical results — a rejected function may be slow, never wrong.
TEST(NativeBackend, RejectedFunctionFallsBackBitIdentically) {
  Module M;
  auto *Out = M.createGlobal("Out", 4 * 8);
  Function *F = buildFn(M, Out, 2);
  Loader L(M);
  MachineConfig Cfg;
  auto BF = bc::lower(*F, L, Cfg);

  setenv("DAECC_NATIVE_REJECT_OP", "SIToFP", 1);
  std::shared_ptr<const native::NativeCode> NC = native::compile(*BF);
  EXPECT_EQ(NC, nullptr) << "rejected opcode must not compile";

  RunResult Ref = runUnder(SimBackend::Switch, M, *F, 9);
  RunResult Got = runUnder(SimBackend::Native, M, *F, 9);
  unsetenv("DAECC_NATIVE_REJECT_OP");
  expectSameRun(Ref, Got, "threaded fallback vs switch");
}

/// Under the AbortOnUnsupported testing hook the same rejection must be
/// loud: a diagnostic naming the opcode, then abort. Pins that an
/// unsupported opcode can never silently produce wrong code.
TEST(NativeBackendDeathTest, UnsupportedOpcodeAbortsUnderHook) {
  Module M;
  auto *Out = M.createGlobal("Out", 4 * 8);
  Function *F = buildFn(M, Out, 1);
  Loader L(M);
  MachineConfig Cfg;
  auto BF = bc::lower(*F, L, Cfg);

  native::Options Opts;
  Opts.AbortOnUnsupported = true;
  setenv("DAECC_NATIVE_REJECT_OP", "SIToFP", 1);
  EXPECT_DEATH(native::compile(*BF, Opts), "rejected opcode 'SIToFP'");
  unsetenv("DAECC_NATIVE_REJECT_OP");
}

} // namespace
