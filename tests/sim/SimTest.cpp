//===- tests/sim/SimTest.cpp - Simulator unit tests --------------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "sim/AccessTrace.h"
#include "sim/CacheSim.h"
#include "sim/Interpreter.h"
#include "sim/MachineConfig.h"
#include "sim/Memory.h"
#include "sim/PowerModel.h"
#include "sim/SimOps.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>

using namespace dae;
using namespace dae::ir;
using namespace dae::sim;

namespace {

TEST(MachineConfigTest, VoltageClampsOffLadderFrequencies) {
  MachineConfig Cfg;
  // On-ladder queries are monotone in frequency.
  EXPECT_LT(Cfg.voltageAt(Cfg.fmin()), Cfg.voltageAt(Cfg.fmax()));
  // Off-ladder queries clamp to the rail instead of extrapolating: a sweep
  // overshooting fmax (or an fmin-epsilon rounding artifact) must not
  // fabricate voltages outside the machine's range.
  EXPECT_DOUBLE_EQ(Cfg.voltageAt(0.0), Cfg.voltageAt(Cfg.fmin()));
  EXPECT_DOUBLE_EQ(Cfg.voltageAt(-1.0), Cfg.voltageAt(Cfg.fmin()));
  EXPECT_DOUBLE_EQ(Cfg.voltageAt(100.0), Cfg.voltageAt(Cfg.fmax()));
  // Interior frequencies stay between the rails.
  double Mid = Cfg.voltageAt(2.6);
  EXPECT_GT(Mid, Cfg.voltageAt(Cfg.fmin()));
  EXPECT_LT(Mid, Cfg.voltageAt(Cfg.fmax()));
}

TEST(MachineConfigTest, PerCoreLaddersDefaultToMachineWide) {
  MachineConfig Cfg;
  // Homogeneous machine (empty CoreLadders): every core's ladder IS the
  // machine ladder, and the per-core voltage curve matches the global one
  // exactly — the bit-exactness contract the single-core path relies on.
  for (unsigned C : {0u, 1u, 3u, 17u}) {
    EXPECT_EQ(&Cfg.ladder(C), &Cfg.FrequenciesGHz);
    EXPECT_EQ(Cfg.fminOf(C), Cfg.fmin());
    EXPECT_EQ(Cfg.fmaxOf(C), Cfg.fmax());
    for (double F : Cfg.FrequenciesGHz)
      EXPECT_EQ(Cfg.voltageAt(C, F), Cfg.voltageAt(F));
  }
}

TEST(MachineConfigTest, BigLittleLaddersAndVoltages) {
  MachineConfig Cfg;
  Cfg.makeBigLittle(/*NumBig=*/2, /*NumLittle=*/2);
  EXPECT_EQ(Cfg.NumCores, 4u);
  // Big cores keep the machine ladder; little cores get the 0.6-1.4 GHz
  // efficiency ladder.
  EXPECT_EQ(Cfg.ladder(0), Cfg.FrequenciesGHz);
  EXPECT_EQ(Cfg.ladder(1), Cfg.FrequenciesGHz);
  EXPECT_DOUBLE_EQ(Cfg.fminOf(2), 0.6);
  EXPECT_DOUBLE_EQ(Cfg.fmaxOf(2), 1.4);
  EXPECT_DOUBLE_EQ(Cfg.fmaxOf(3), 1.4);

  // Off-ladder queries clamp to the *core's* ladder: pricing a little core
  // at the big fmax must cost the little fmax's voltage, not extrapolate
  // into a range the core cannot reach.
  EXPECT_DOUBLE_EQ(Cfg.clampToLadder(2, Cfg.fmax()), 1.4);
  EXPECT_DOUBLE_EQ(Cfg.voltageAt(2, Cfg.fmax()), Cfg.voltageAt(2, 1.4));
  EXPECT_DOUBLE_EQ(Cfg.clampToLadder(2, 0.1), 0.6);
  EXPECT_LT(Cfg.voltageAt(2, 1.4), Cfg.voltageAt(0, Cfg.fmax()));

  // rungAtOrAbove picks the core's own rungs (CPUFREQ_RELATION_L).
  EXPECT_DOUBLE_EQ(Cfg.rungAtOrAbove(2, 0.7), 0.8);
  EXPECT_DOUBLE_EQ(Cfg.rungAtOrAbove(2, 0.8), 0.8);
  EXPECT_DOUBLE_EQ(Cfg.rungAtOrAbove(2, 5.0), 1.4);
  EXPECT_DOUBLE_EQ(Cfg.rungAtOrAbove(0, 0.7), Cfg.fmin());
}

TEST(MachineConfigTest, SingleEntryLadderPinsTheCore) {
  MachineConfig Cfg;
  Cfg.NumCores = 2;
  Cfg.CoreLadders = {{2.0}, Cfg.FrequenciesGHz};
  // Every query on the pinned core resolves to its one operating point.
  EXPECT_DOUBLE_EQ(Cfg.fminOf(0), 2.0);
  EXPECT_DOUBLE_EQ(Cfg.fmaxOf(0), 2.0);
  EXPECT_DOUBLE_EQ(Cfg.clampToLadder(0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Cfg.clampToLadder(0, 9.0), 2.0);
  EXPECT_DOUBLE_EQ(Cfg.rungAtOrAbove(0, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Cfg.rungAtOrAbove(0, 9.0), 2.0);
  EXPECT_DOUBLE_EQ(Cfg.voltageAt(0, 3.4), Cfg.voltageAt(0, 2.0));
  // The second core still sees the full machine ladder.
  EXPECT_EQ(Cfg.ladder(1), Cfg.FrequenciesGHz);
}

TEST(DramChannelTest, QueuesConcurrentLines) {
  DramChannel Ch(/*BandwidthGBs=*/64.0, /*LineBytes=*/64);
  EXPECT_DOUBLE_EQ(Ch.occupancyNs(), 1.0);
  // First request at t=0 starts immediately and books [0, 1).
  EXPECT_DOUBLE_EQ(Ch.requestLine(0.0), 0.0);
  // A second request at t=0 waits for the channel to free.
  EXPECT_DOUBLE_EQ(Ch.requestLine(0.0), 1.0);
  // Back-to-back pressure keeps extending the queue...
  EXPECT_DOUBLE_EQ(Ch.requestLine(0.5), 1.5);
  // ...and a late arrival after the backlog drains pays nothing.
  EXPECT_DOUBLE_EQ(Ch.requestLine(10.0), 0.0);
}

TEST(DramChannelTest, NonPositiveBandwidthDisablesQueue) {
  DramChannel Ch(/*BandwidthGBs=*/0.0, /*LineBytes=*/64);
  EXPECT_DOUBLE_EQ(Ch.occupancyNs(), 0.0);
  for (int I = 0; I != 4; ++I)
    EXPECT_DOUBLE_EQ(Ch.requestLine(0.0), 0.0);
}

TEST(TracePoolTest, EnvCapParsing) {
  // Unset: the built-in default.
  unsetenv("DAECC_TRACE_POOL_MB");
  std::size_t Default = TracePool::maxTotalBytesFromEnv();
  EXPECT_GT(Default, 0u);
  // Set: the cap in MiB.
  setenv("DAECC_TRACE_POOL_MB", "64", 1);
  EXPECT_EQ(TracePool::maxTotalBytesFromEnv(), 64u << 20);
  unsetenv("DAECC_TRACE_POOL_MB");
}

TEST(TracePoolDeathTest, GarbageEnvCapIsAHardError) {
  // A malformed cap must not be silently ignored (it would run with an
  // unintended memory budget): exit 2, like a bad CLI flag.
  EXPECT_EXIT(
      {
        setenv("DAECC_TRACE_POOL_MB", "lots", 1);
        TracePool::maxTotalBytesFromEnv();
      },
      testing::ExitedWithCode(2), "invalid DAECC_TRACE_POOL_MB");
  EXPECT_EXIT(
      {
        setenv("DAECC_TRACE_POOL_MB", "16MB", 1);
        TracePool::maxTotalBytesFromEnv();
      },
      testing::ExitedWithCode(2), "invalid DAECC_TRACE_POOL_MB");
  EXPECT_EXIT(
      {
        setenv("DAECC_TRACE_POOL_MB", "-4", 1);
        TracePool::maxTotalBytesFromEnv();
      },
      testing::ExitedWithCode(2), "invalid DAECC_TRACE_POOL_MB");
  EXPECT_EXIT(
      {
        setenv("DAECC_TRACE_POOL_MB", "0", 1);
        TracePool::maxTotalBytesFromEnv();
      },
      testing::ExitedWithCode(2), "invalid DAECC_TRACE_POOL_MB");
}

TEST(TracePoolTest, RetainedBytesAreCapped) {
  // Per-buffer cap: a huge-wave trace must not pin its capacity forever.
  TracePool Pool(/*MaxPooled=*/4, /*MaxBufferBytes=*/1024,
                 /*MaxTotalBytes=*/4096);
  std::vector<std::uint64_t> Huge;
  Huge.reserve(1024); // 8 KiB > per-buffer cap.
  Pool.recycle(std::move(Huge));
  EXPECT_EQ(Pool.pooledBuffers(), 0u);
  EXPECT_EQ(Pool.retainedBytes(), 0u);

  // Total cap: buffers under the per-buffer cap stop pooling once the
  // free-list's summed capacity would exceed MaxTotalBytes.
  for (int I = 0; I != 8; ++I) {
    std::vector<std::uint64_t> Buf;
    Buf.reserve(128); // 1 KiB each.
    Pool.recycle(std::move(Buf));
  }
  EXPECT_LE(Pool.retainedBytes(), 4096u);
  EXPECT_LE(Pool.pooledBuffers(), 4u);

  // Acquire returns retained capacity and releases its accounting.
  std::size_t Before = Pool.retainedBytes();
  std::vector<std::uint64_t> Got = Pool.acquire();
  EXPECT_GE(Got.capacity(), 128u);
  EXPECT_LT(Pool.retainedBytes(), Before);
}

TEST(MemoryTest, ImageHashIgnoresUntouchedAndZeroPages) {
  Memory A, B;
  A.storeI64(0x1000, 7);
  B.storeI64(0x1000, 7);
  EXPECT_EQ(A.imageHash(), B.imageHash());
  // Touching a page with zeroes (what a pure prefetcher's page allocation
  // does) must not change the image.
  B.storeI64(0x900000, 0);
  EXPECT_EQ(A.imageHash(), B.imageHash());
  // A real difference must.
  B.storeI64(0x900000, 1);
  EXPECT_NE(A.imageHash(), B.imageHash());
}

TEST(MemoryTest, RoundTripsValues) {
  Memory Mem;
  Mem.storeI64(0x1000, -42);
  EXPECT_EQ(Mem.loadI64(0x1000), -42);
  Mem.storeF64(0x2000, 3.25);
  EXPECT_DOUBLE_EQ(Mem.loadF64(0x2000), 3.25);
  // Untouched memory reads as zero.
  EXPECT_EQ(Mem.loadI64(0x900000), 0);
}

TEST(LoaderTest, AssignsDisjointAlignedBases) {
  Module M;
  M.createGlobal("a", 100);
  M.createGlobal("b", 4096);
  M.createGlobal("c", 8);
  Loader L(M);
  std::uint64_t A = L.baseOf("a"), B = L.baseOf("b"), C = L.baseOf("c");
  EXPECT_EQ(A % 64, 0u);
  EXPECT_EQ(B % 64, 0u);
  EXPECT_GE(B, A + 100);
  EXPECT_GE(C, B + 4096);
}

TEST(CacheTest, HitsAfterMiss) {
  Cache C({1024, 2, 64}); // 8 sets x 2 ways.
  EXPECT_FALSE(C.access(0x0));
  EXPECT_TRUE(C.access(0x0));
  EXPECT_TRUE(C.access(0x38)); // Same line.
  EXPECT_FALSE(C.access(0x40)); // Next line.
  EXPECT_EQ(C.misses(), 2u);
  EXPECT_EQ(C.hits(), 2u);
}

TEST(CacheTest, LruEviction) {
  Cache C({128, 2, 64}); // 1 set, 2 ways.
  C.access(0x000);        // Line A.
  C.access(0x040);        // Line B.
  C.access(0x000);        // Touch A (B becomes LRU).
  C.access(0x080);        // Line C evicts B.
  EXPECT_TRUE(C.probe(0x000));
  EXPECT_FALSE(C.probe(0x040));
  EXPECT_TRUE(C.probe(0x080));
}

TEST(CacheTest, SameLineFastPathKeepsLruExact) {
  // The same-line-as-last-access short circuit must still bump the line's
  // LRU stamp, or a hot line would look stale and get evicted.
  Cache C({128, 2, 64}); // 1 set, 2 ways.
  C.access(0x000);       // Line A (miss).
  C.access(0x040);       // Line B (miss).
  C.access(0x000);       // A again: slow-path hit, A becomes MRU.
  C.access(0x008);       // A again: fast-path hit, A stays MRU.
  C.access(0x080);       // Line C must evict B, the true LRU.
  EXPECT_TRUE(C.probe(0x000));
  EXPECT_FALSE(C.probe(0x040));
  EXPECT_TRUE(C.probe(0x080));
  EXPECT_EQ(C.hits(), 2u);
  EXPECT_EQ(C.misses(), 3u);
}

TEST(CacheTest, RejectsNonPowerOfTwoLineBytes) {
  EXPECT_THROW(Cache({1024, 2, 48}), std::invalid_argument);
  EXPECT_THROW(Cache({1024, 2, 0}), std::invalid_argument);
  MachineConfig Cfg;
  Cfg.L2.LineBytes = 96;
  EXPECT_THROW(CacheHierarchy(Cfg, 1), std::invalid_argument);
  EXPECT_EQ(lineShiftOf(64), 6u);
  EXPECT_EQ(lineShiftOf(1), 0u);
}

TEST(CacheHierarchyTest, FillsAllLevelsAndIsolatesCores) {
  MachineConfig Cfg;
  Cfg.HwNextLinePrefetch = false;
  CacheHierarchy H(Cfg, 2);
  EXPECT_EQ(H.access(0, 0x1000), HitLevel::Memory);
  EXPECT_EQ(H.access(0, 0x1000), HitLevel::L1);
  // Core 1's private caches are cold, but the shared LLC has the line.
  EXPECT_EQ(H.access(1, 0x1000), HitLevel::LLC);
  EXPECT_EQ(H.access(1, 0x1000), HitLevel::L1);
}

TEST(CacheHierarchyTest, NextLinePrefetcherCoversStreams) {
  MachineConfig Cfg;
  Cfg.HwNextLinePrefetch = true;
  CacheHierarchy H(Cfg, 1);
  EXPECT_EQ(H.access(0, 0x0), HitLevel::Memory);
  // The hardware prefetcher pulled line 0x40 into L2.
  EXPECT_EQ(H.access(0, 0x40), HitLevel::L2);
}

TEST(PowerModelTest, MatchesPaperFormula) {
  MachineConfig Cfg;
  PowerModel PM(Cfg);
  // Pdyn = (0.19*IPC + 1.64) * f * V^2 — check at IPC=1, f=3.4.
  double V = Cfg.voltageAt(3.4);
  EXPECT_NEAR(PM.dynamicPower(3.4, 1.0), (0.19 + 1.64) * 3.4 * V * V, 1e-9);
  // Dynamic power grows with both frequency and IPC.
  EXPECT_GT(PM.dynamicPower(3.4, 2.0), PM.dynamicPower(3.4, 1.0));
  EXPECT_GT(PM.dynamicPower(3.4, 1.0), PM.dynamicPower(1.6, 1.0));
  EXPECT_GT(PM.staticPowerPerCore(3.4), PM.staticPowerPerCore(1.6));
  EXPECT_LT(PM.sleepPowerPerCore(), PM.staticPowerPerCore(1.6));
}

TEST(PhaseStatsTest, FrequencyDecomposition) {
  PhaseStats S;
  S.Instructions = 1000;
  S.ComputeCycles = 3400.0;
  S.StallNs = 500.0;
  // At 3.4 GHz: 1000 ns compute + 500 ns stall.
  EXPECT_NEAR(S.timeNs(3.4), 1500.0, 1e-9);
  // At 1.7 GHz compute doubles, stall unchanged.
  EXPECT_NEAR(S.timeNs(1.7), 2500.0, 1e-9);
  // IPC shrinks as stalls dominate at high frequency less... at fixed
  // composition IPC at 3.4 GHz = 1000 / (1500 * 3.4).
  EXPECT_NEAR(S.ipc(3.4), 1000.0 / (1500.0 * 3.4), 1e-9);
}

// Opcode lowering must refuse unknown enumerators loudly: the old fallback
// silently mapped them to Add/CmpEQ, executing wrong code. The cast values
// stay inside the enums' representable range (both have < 16 enumerators),
// so forming them is well-defined; only the lowering must reject them.
TEST(SimOpsDeathTest, UnknownBinOpAborts) {
  EXPECT_DEATH((void)binSimOp(static_cast<BinOp>(15)),
               "binSimOp: unknown opcode value 15");
}

TEST(SimOpsDeathTest, UnknownCmpPredAborts) {
  EXPECT_DEATH((void)cmpSimOp(static_cast<CmpPred>(15)),
               "cmpSimOp: unknown opcode value 15");
}

/// Interpreter fixture: sum = Src[0..n) accumulated into Dst[0].
struct InterpFixture {
  Module M;
  Function *F;
  MachineConfig Cfg;
  Memory Mem;

  InterpFixture() {
    auto *Src = M.createGlobal("Src", 1024 * 8);
    auto *Dst = M.createGlobal("Dst", 8);
    F = M.createFunction("sum", Type::Void, {Type::Int64});
    IRBuilder B(M, F->createBlock("entry"));
    emitCountedLoop(B, B.getInt(0), F->getArg(0), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Value *V = B.createLoad(Type::Float64, B.createGep1D(Src, I, 8));
      Value *DstPtr = B.createGep1D(Dst, B.getInt(0), 8);
      B.createStore(B.createFAdd(B.createLoad(Type::Float64, DstPtr), V),
                    DstPtr);
    });
    B.createRet();
  }
};

TEST(InterpreterTest, ComputesCorrectResult) {
  InterpFixture Fx;
  Loader L(Fx.M);
  for (int I = 0; I != 100; ++I)
    Fx.Mem.storeF64(L.baseOf("Src") + static_cast<std::uint64_t>(I) * 8,
                    static_cast<double>(I));
  CacheHierarchy Caches(Fx.Cfg, 1);
  Interpreter Interp(Fx.Cfg, Fx.Mem, Caches, L);
  PhaseStats S = Interp.run(*Fx.F, 0, {RuntimeValue::ofInt(100)});
  EXPECT_DOUBLE_EQ(Fx.Mem.loadF64(L.baseOf("Dst")), 99.0 * 100.0 / 2.0);
  EXPECT_GT(S.Instructions, 500u); // ~8 instructions x 100 iterations.
  EXPECT_EQ(S.Loads, 200u);
  EXPECT_EQ(S.Stores, 100u);
}

TEST(InterpreterTest, ColdMissesProduceStalls) {
  InterpFixture Fx;
  Loader L(Fx.M);
  CacheHierarchy Caches(Fx.Cfg, 1);
  Interpreter Interp(Fx.Cfg, Fx.Mem, Caches, L);
  PhaseStats Cold = Interp.run(*Fx.F, 0, {RuntimeValue::ofInt(1024)});
  EXPECT_GT(Cold.MemAccesses, 0u);
  EXPECT_GT(Cold.StallNs, 0.0);
  // A second pass over the same (small) data is cache-warm.
  PhaseStats Warm = Interp.run(*Fx.F, 0, {RuntimeValue::ofInt(1024)});
  EXPECT_LT(Warm.StallNs, Cold.StallNs);
  EXPECT_GT(Warm.L1Hits, Cold.L1Hits);
}

TEST(InterpreterTest, PrefetchWarmsWithoutSideEffects) {
  Module M;
  auto *Src = M.createGlobal("Src", 4096 * 8);
  auto *Dst = M.createGlobal("Dst", 8);
  Function *Pf = M.createFunction("pf", Type::Void, {Type::Int64});
  {
    IRBuilder B(M, Pf->createBlock("entry"));
    B.createPrefetch(B.createGep1D(Dst, B.getInt(0), 8));
    emitCountedLoop(B, B.getInt(0), Pf->getArg(0), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
                      B.createPrefetch(B.createGep1D(Src, I, 8));
                    });
    B.createRet();
  }
  Function *Rd = M.createFunction("rd", Type::Void, {Type::Int64});
  {
    IRBuilder B(M, Rd->createBlock("entry"));
    emitCountedLoop(B, B.getInt(0), Rd->getArg(0), B.getInt(1), "i",
                    [&](IRBuilder &B, Value *I) {
      Value *V = B.createLoad(Type::Float64, B.createGep1D(Src, I, 8));
      B.createStore(V, B.createGep1D(Dst, B.getInt(0), 8));
    });
    B.createRet();
  }
  MachineConfig Cfg;
  Memory Mem;
  Loader L(M);
  CacheHierarchy Caches(Cfg, 1);
  Interpreter Interp(Cfg, Mem, Caches, L);
  std::int64_t N = 1024; // 8 KiB: fits L1.
  PhaseStats Access = Interp.run(*Pf, 0, {RuntimeValue::ofInt(N)});
  PhaseStats Exec = Interp.run(*Rd, 0, {RuntimeValue::ofInt(N)});
  EXPECT_EQ(Access.Prefetches, static_cast<std::uint64_t>(N) + 1);
  EXPECT_EQ(Exec.MemAccesses, 0u) << "prefetched data must hit";
  EXPECT_EQ(Exec.StallNs, 0.0);
}

// --- DramChannel occupancy boundaries -------------------------------------

TEST(DramChannelTest, NormalBandwidthQueuesBackToBack) {
  // 12.8 GB/s at 64-byte lines: 5 ns per transfer. Three requests at the
  // same instant queue 0 / 5 / 10 ns.
  DramChannel Ch(12.8, 64);
  EXPECT_DOUBLE_EQ(Ch.occupancyNs(), 5.0);
  EXPECT_DOUBLE_EQ(Ch.requestLine(0.0), 0.0);
  EXPECT_DOUBLE_EQ(Ch.requestLine(0.0), 5.0);
  EXPECT_DOUBLE_EQ(Ch.requestLine(0.0), 10.0);
  // A request after the backlog drains waits nothing.
  EXPECT_DOUBLE_EQ(Ch.requestLine(100.0), 0.0);
}

TEST(DramChannelTest, NonPositiveBandwidthIsIdenticalToNoChannel) {
  // <= 0 (and NaN) disables the queue: occupancy 0 and every request free,
  // byte-identical to the single-workload engine's no-channel model.
  for (double B : {0.0, -1.0, -12.8, std::nan("")}) {
    DramChannel Ch(B, 64);
    EXPECT_DOUBLE_EQ(Ch.occupancyNs(), 0.0) << "bandwidth " << B;
    for (int I = 0; I != 4; ++I)
      EXPECT_DOUBLE_EQ(Ch.requestLine(I * 3.0), 0.0) << "bandwidth " << B;
  }
}

TEST(DramChannelTest, ExtremeBandwidthStaysFinite) {
  // A subnormal bandwidth would overflow LineBytes / BandwidthGBs to +inf;
  // the occupancy must cap at the finite ceiling instead, so repeated
  // requests keep producing finite (if astronomically large) delays.
  DramChannel Tiny(5e-324, 64);
  EXPECT_TRUE(std::isfinite(Tiny.occupancyNs()));
  EXPECT_DOUBLE_EQ(Tiny.occupancyNs(), DramChannel::MaxOccupancyNs);
  EXPECT_DOUBLE_EQ(Tiny.requestLine(0.0), 0.0);
  for (int I = 1; I != 4; ++I) {
    double Delay = Tiny.requestLine(0.0);
    EXPECT_TRUE(std::isfinite(Delay)) << "request " << I;
    EXPECT_DOUBLE_EQ(Delay, I * DramChannel::MaxOccupancyNs);
  }

  // Huge-but-normal configurations keep their exact occupancy.
  DramChannel Slow(1e-12, 64);
  EXPECT_TRUE(std::isfinite(Slow.occupancyNs()));
  EXPECT_DOUBLE_EQ(Slow.occupancyNs(), 64.0 / 1e-12);

  // Infinite bandwidth transfers in zero time but still counts as enabled
  // only when positive; occupancy collapses to 0 and requests are free.
  DramChannel Inf(std::numeric_limits<double>::infinity(), 64);
  EXPECT_DOUBLE_EQ(Inf.occupancyNs(), 0.0);
  EXPECT_DOUBLE_EQ(Inf.requestLine(0.0), 0.0);
}

} // namespace
