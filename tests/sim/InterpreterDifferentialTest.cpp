//===- tests/sim/InterpreterDifferentialTest.cpp - IR vs host semantics ----===//
//
// Part of daecc. Distributed under the MIT license.
//
// Differential testing of the interpreter: seeded random straight-line
// programs over the full instruction set are executed both by the Task IR
// interpreter and by a host-side evaluator walking the same IR; results
// must agree bit-for-bit. Covers binops (integer and float), comparisons,
// selects, and casts — the arithmetic core the workload tests only sample.
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"
#include "sim/Interpreter.h"
#include "support/Casting.h"
#include "support/MathUtil.h"

#include <gtest/gtest.h>
#include <map>

using namespace dae;
using namespace dae::ir;

namespace {

/// Host-side evaluation of the same value graph.
struct HostEval {
  std::map<const Value *, sim::RuntimeValue> Env;

  sim::RuntimeValue get(const Value *V) {
    if (const auto *CI = dyn_cast<ConstantInt>(V))
      return sim::RuntimeValue::ofInt(CI->getValue());
    if (const auto *CF = dyn_cast<ConstantFloat>(V))
      return sim::RuntimeValue::ofFloat(CF->getValue());
    return Env.at(V);
  }

  void eval(const Instruction *I) {
    if (const auto *Bin = dyn_cast<BinaryInst>(I)) {
      sim::RuntimeValue L = get(Bin->getLHS()), R = get(Bin->getRHS());
      sim::RuntimeValue Out;
      switch (Bin->getOpcode()) {
      case BinOp::Add: Out.I = L.I + R.I; break;
      case BinOp::Sub: Out.I = L.I - R.I; break;
      case BinOp::Mul: Out.I = L.I * R.I; break;
      case BinOp::SDiv: Out.I = R.I ? L.I / R.I : 0; break;
      case BinOp::SRem: Out.I = R.I ? L.I % R.I : 0; break;
      case BinOp::And: Out.I = L.I & R.I; break;
      case BinOp::Or: Out.I = L.I | R.I; break;
      case BinOp::Xor: Out.I = L.I ^ R.I; break;
      case BinOp::Shl:
        Out.I = static_cast<std::int64_t>(static_cast<std::uint64_t>(L.I)
                                          << (R.I & 63));
        break;
      case BinOp::AShr: Out.I = L.I >> (R.I & 63); break;
      case BinOp::FAdd: Out.D = L.D + R.D; break;
      case BinOp::FSub: Out.D = L.D - R.D; break;
      case BinOp::FMul: Out.D = L.D * R.D; break;
      case BinOp::FDiv: Out.D = L.D / R.D; break;
      }
      Env[I] = Out;
    } else if (const auto *Cmp = dyn_cast<CmpInst>(I)) {
      sim::RuntimeValue L = get(Cmp->getLHS()), R = get(Cmp->getRHS());
      bool B = false;
      switch (Cmp->getPredicate()) {
      case CmpPred::EQ: B = L.I == R.I; break;
      case CmpPred::NE: B = L.I != R.I; break;
      case CmpPred::SLT: B = L.I < R.I; break;
      case CmpPred::SLE: B = L.I <= R.I; break;
      case CmpPred::SGT: B = L.I > R.I; break;
      case CmpPred::SGE: B = L.I >= R.I; break;
      case CmpPred::FLT: B = L.D < R.D; break;
      case CmpPred::FLE: B = L.D <= R.D; break;
      case CmpPred::FGT: B = L.D > R.D; break;
      case CmpPred::FGE: B = L.D >= R.D; break;
      case CmpPred::FEQ: B = L.D == R.D; break;
      case CmpPred::FNE: B = L.D != R.D; break;
      }
      Env[I] = sim::RuntimeValue::ofInt(B);
    } else if (const auto *Sel = dyn_cast<SelectInst>(I)) {
      Env[I] = get(Sel->getCondition()).I ? get(Sel->getTrueValue())
                                          : get(Sel->getFalseValue());
    } else if (const auto *Cast = dyn_cast<CastInst>(I)) {
      sim::RuntimeValue V = get(Cast->getSource());
      sim::RuntimeValue Out;
      switch (Cast->getOpcode()) {
      case CastOp::SIToFP: Out.D = static_cast<double>(V.I); break;
      case CastOp::FPToSI: Out.I = static_cast<std::int64_t>(V.D); break;
      case CastOp::PtrToInt:
      case CastOp::IntToPtr: Out.I = V.I; break;
      }
      Env[I] = Out;
    }
  }
};

class InterpDifferential : public ::testing::TestWithParam<unsigned> {};

TEST_P(InterpDifferential, RandomStraightLineProgram) {
  SplitMixRng Rng(GetParam() * 2654435761u + 17);
  Module M;
  auto *Out = M.createGlobal("Out", 16);
  Function *F =
      M.createFunction("p", Type::Void, {Type::Int64, Type::Float64});
  IRBuilder B(M, F->createBlock("entry"));

  std::vector<Value *> Ints{F->getArg(0), M.getInt(3), M.getInt(-7)};
  std::vector<Value *> Floats{F->getArg(1), M.getFloat(0.75),
                              M.getFloat(-2.5)};
  std::vector<const Instruction *> Order;

  auto PickI = [&]() { return Ints[Rng.nextBelow(Ints.size())]; };
  auto PickF = [&]() { return Floats[Rng.nextBelow(Floats.size())]; };

  for (int Step = 0; Step != 40; ++Step) {
    Value *V = nullptr;
    switch (Rng.nextBelow(6)) {
    case 0: {
      BinOp Ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::SDiv,
                     BinOp::SRem, BinOp::And, BinOp::Or, BinOp::Xor,
                     BinOp::Shl, BinOp::AShr};
      V = B.createBinOp(Ops[Rng.nextBelow(10)], PickI(), PickI());
      Ints.push_back(V);
      break;
    }
    case 1: {
      BinOp Ops[] = {BinOp::FAdd, BinOp::FSub, BinOp::FMul, BinOp::FDiv};
      V = B.createBinOp(Ops[Rng.nextBelow(4)], PickF(), PickF());
      Floats.push_back(V);
      break;
    }
    case 2: {
      CmpPred Ps[] = {CmpPred::EQ, CmpPred::NE, CmpPred::SLT, CmpPred::SLE,
                      CmpPred::SGT, CmpPred::SGE};
      V = B.createCmp(Ps[Rng.nextBelow(6)], PickI(), PickI());
      Ints.push_back(V);
      break;
    }
    case 3:
      V = B.createSelect(PickI(), PickI(), PickI());
      Ints.push_back(V);
      break;
    case 4:
      V = B.createCast(CastOp::SIToFP, PickI());
      Floats.push_back(V);
      break;
    default:
      V = B.createCast(CastOp::FPToSI, PickF());
      Ints.push_back(V);
      break;
    }
    Order.push_back(cast<Instruction>(V));
  }
  Value *FinalI = Ints.back();
  Value *FinalF = Floats.back();
  B.createStore(FinalI, B.createGep1D(Out, B.getInt(0), 8));
  B.createStore(FinalF, B.createGep1D(Out, B.getInt(1), 8));
  B.createRet();

  // Host evaluation.
  sim::RuntimeValue ArgI = sim::RuntimeValue::ofInt(
      static_cast<std::int64_t>(Rng.next() % 2001) - 1000);
  sim::RuntimeValue ArgF = sim::RuntimeValue::ofFloat(Rng.nextDouble() * 8 - 4);
  HostEval Host;
  Host.Env[F->getArg(0)] = ArgI;
  Host.Env[F->getArg(1)] = ArgF;
  for (const Instruction *I : Order)
    Host.eval(I);

  // Interpreter evaluation.
  sim::MachineConfig Cfg;
  sim::Memory Mem;
  sim::Loader L(M);
  sim::CacheHierarchy Caches(Cfg, 1);
  sim::Interpreter Interp(Cfg, Mem, Caches, L);
  Interp.run(*F, 0, {ArgI, ArgF});

  EXPECT_EQ(Mem.loadI64(L.baseOf("Out")), Host.get(FinalI).I);
  double HostF = Host.get(FinalF).D;
  double GotF = Mem.loadF64(L.baseOf("Out") + 8);
  if (std::isnan(HostF))
    EXPECT_TRUE(std::isnan(GotF));
  else
    EXPECT_DOUBLE_EQ(GotF, HostF);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InterpDifferential, ::testing::Range(0u, 32u));

} // namespace
