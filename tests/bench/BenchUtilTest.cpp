//===- tests/bench/BenchUtilTest.cpp - Bench flag parsing ------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the bench drivers' shared flag parsing, centered on the
// backend selection: every valid --sim-backend / DAECC_SIM_BACKEND name maps
// to its SimBackend, and any unknown value is a hard error (exit 2) naming
// the valid choices — never a silent fall-back that would let a sweep
// mislabel which backend it measured.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <initializer_list>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace dae;
using namespace dae::bench;
using namespace dae::sim;

namespace {

SimBackend parse(const char *Flag) {
  char Prog[] = "bench";
  char Arg[64];
  std::snprintf(Arg, sizeof(Arg), "%s", Flag);
  char *Argv[] = {Prog, Arg};
  return backendFromArgs(2, Argv);
}

TEST(BenchUtil, BackendFlagMapsEveryValidName) {
  EXPECT_EQ(parse("--sim-backend=switch"), SimBackend::Switch);
  EXPECT_EQ(parse("--sim-backend=threaded"), SimBackend::Threaded);
  EXPECT_EQ(parse("--sim-backend=native"), SimBackend::Native);
}

TEST(BenchUtil, BackendDefaultsWithoutFlag) {
  unsetenv("DAECC_SIM_BACKEND");
  char Prog[] = "bench";
  char *Argv[] = {Prog};
  EXPECT_EQ(backendFromArgs(1, Argv), SimBackend::Threaded);
}

TEST(BenchUtil, BackendEnvOverridesDefault) {
  setenv("DAECC_SIM_BACKEND", "native", 1);
  char Prog[] = "bench";
  char *Argv[] = {Prog};
  EXPECT_EQ(backendFromArgs(1, Argv), SimBackend::Native);
  setenv("DAECC_SIM_BACKEND", "switch", 1);
  EXPECT_EQ(backendFromArgs(1, Argv), SimBackend::Switch);
  unsetenv("DAECC_SIM_BACKEND");
}

TEST(BenchUtil, FlagOverridesEnv) {
  setenv("DAECC_SIM_BACKEND", "switch", 1);
  EXPECT_EQ(parse("--sim-backend=native"), SimBackend::Native);
  unsetenv("DAECC_SIM_BACKEND");
}

TEST(BenchUtilDeathTest, UnknownBackendFlagIsAHardError) {
  EXPECT_EXIT(parse("--sim-backend=fastest"),
              ::testing::ExitedWithCode(2),
              "unknown --sim-backend value 'fastest'.*'switch', 'threaded' "
              "or 'native'");
}

TEST(BenchUtilDeathTest, UnknownBackendEnvIsAHardError) {
  char Prog[] = "bench";
  char *Argv[] = {Prog};
  EXPECT_EXIT(
      {
        setenv("DAECC_SIM_BACKEND", "turbo", 1);
        backendFromArgs(1, Argv);
      },
      ::testing::ExitedWithCode(2), "unknown DAECC_SIM_BACKEND value 'turbo'");
  unsetenv("DAECC_SIM_BACKEND");
}

// --- BenchOptions: the drivers' unified flag surface ----------------------

BenchOptions parseOpts(std::initializer_list<const char *> Flags) {
  std::vector<std::string> Storage = {"bench"};
  for (const char *F : Flags)
    Storage.push_back(F);
  std::vector<char *> Argv;
  for (std::string &S : Storage)
    Argv.push_back(S.data());
  return BenchOptions::parse(static_cast<int>(Argv.size()), Argv.data());
}

TEST(BenchOptions, DefaultsMatchTheOldPerDriverParsing) {
  unsetenv("DAECC_SIM_BACKEND");
  unsetenv("DAECC_REPLAY_OVERLAP");
  unsetenv("DAECC_DAE_VERIFY");
  BenchOptions O = parseOpts({});
  EXPECT_EQ(O.Scale, workloads::Scale::Full);
  EXPECT_EQ(O.SimThreads, 1u);
  EXPECT_EQ(O.Jobs, 1u);
  EXPECT_TRUE(O.ReplayOverlap);
  EXPECT_FALSE(O.PassStats);
  EXPECT_FALSE(O.DaeVerify);
  EXPECT_FALSE(O.NoBaseline);
  EXPECT_EQ(O.Cores, 0u);
  EXPECT_EQ(O.BigCores + O.LittleCores, 0u);
  EXPECT_TRUE(O.Mix.empty());
  EXPECT_EQ(O.Governor, "both");

  sim::MachineConfig Cfg = O.machineConfig();
  sim::MachineConfig Ref;
  EXPECT_EQ(Cfg.NumCores, Ref.NumCores);
  EXPECT_TRUE(Cfg.CoreLadders.empty());
  EXPECT_FALSE(O.measureBaseline()) << "jobs=1 has nothing to compare";
}

TEST(BenchOptions, ParsesTheNewFlags) {
  BenchOptions O = parseOpts({"--test-scale", "--jobs=3", "--sim-threads=2",
                              "--cores=8", "--mix=libq,cigar,fft",
                              "--governor=ondemand", "--no-baseline",
                              "--dae-verify"});
  EXPECT_EQ(O.Scale, workloads::Scale::Test);
  EXPECT_EQ(O.Jobs, 3u);
  EXPECT_EQ(O.SimThreads, 2u);
  EXPECT_EQ(O.Cores, 8u);
  ASSERT_EQ(O.Mix.size(), 3u);
  EXPECT_EQ(O.Mix[0], "libq");
  EXPECT_EQ(O.Mix[1], "cigar");
  EXPECT_EQ(O.Mix[2], "fft");
  EXPECT_EQ(O.Governor, "ondemand");
  EXPECT_TRUE(O.NoBaseline);
  EXPECT_TRUE(O.DaeVerify);
  EXPECT_FALSE(O.measureBaseline()) << "--no-baseline wins over jobs>1";
  EXPECT_EQ(O.machineConfig().NumCores, 8u);
}

TEST(BenchOptions, BigLittleShapesTheMachine) {
  BenchOptions O = parseOpts({"--big-little=2,2", "--cores=16"});
  EXPECT_EQ(O.BigCores, 2u);
  EXPECT_EQ(O.LittleCores, 2u);
  sim::MachineConfig Cfg = O.machineConfig();
  // --big-little overrides --cores and installs per-core ladders.
  EXPECT_EQ(Cfg.NumCores, 4u);
  ASSERT_EQ(Cfg.CoreLadders.size(), 4u);
  EXPECT_EQ(Cfg.ladder(0), Cfg.FrequenciesGHz);
  EXPECT_DOUBLE_EQ(Cfg.fmaxOf(3), 1.4);
}

TEST(BenchUtilDeathTest, GarbageCoresIsAHardError) {
  EXPECT_EXIT(parseOpts({"--cores=many"}), ::testing::ExitedWithCode(2),
              "invalid --cores value 'many'");
  EXPECT_EXIT(parseOpts({"--cores=0"}), ::testing::ExitedWithCode(2),
              "invalid --cores value '0'");
  EXPECT_EXIT(parseOpts({"--cores=4x"}), ::testing::ExitedWithCode(2),
              "invalid --cores value '4x'");
}

TEST(BenchUtilDeathTest, MalformedBigLittleIsAHardError) {
  EXPECT_EXIT(parseOpts({"--big-little=4"}), ::testing::ExitedWithCode(2),
              "invalid --big-little value '4'");
  EXPECT_EXIT(parseOpts({"--big-little=4,"}), ::testing::ExitedWithCode(2),
              "invalid --big-little value '4,'");
  EXPECT_EXIT(parseOpts({"--big-little=,4"}), ::testing::ExitedWithCode(2),
              "invalid --big-little value ',4'");
  EXPECT_EXIT(parseOpts({"--big-little=a,b"}), ::testing::ExitedWithCode(2),
              "invalid --big-little value 'a'");
}

TEST(BenchUtilDeathTest, MalformedMixIsAHardError) {
  EXPECT_EXIT(parseOpts({"--mix="}), ::testing::ExitedWithCode(2),
              "--mix requires at least one workload name");
  EXPECT_EXIT(parseOpts({"--mix=libq,"}), ::testing::ExitedWithCode(2),
              "trailing comma");
  EXPECT_EXIT(parseOpts({"--mix=libq,,fft"}), ::testing::ExitedWithCode(2),
              "empty workload name");
}

TEST(BenchUtilDeathTest, UnknownGovernorIsAHardError) {
  EXPECT_EXIT(parseOpts({"--governor=powersave"}),
              ::testing::ExitedWithCode(2),
              "unknown --governor value 'powersave'.*'ondemand', "
              "'conservative' or 'both'");
}

TEST(BenchOptions, DaeProfileGuidedFlagAndEnv) {
  unsetenv("DAECC_DAE_PG");
  EXPECT_FALSE(parseOpts({}).DaeProfileGuided);
  EXPECT_TRUE(parseOpts({"--dae-profile-guided"}).DaeProfileGuided);
  setenv("DAECC_DAE_PG", "1", 1);
  EXPECT_TRUE(parseOpts({}).DaeProfileGuided);
  setenv("DAECC_DAE_PG", "0", 1);
  EXPECT_FALSE(parseOpts({}).DaeProfileGuided);
  unsetenv("DAECC_DAE_PG");
}

// --- Duplicate flags: deterministic last-win ------------------------------
//
// A sweep script appends overrides to a base command line, so repeating a
// flag must deterministically take the last occurrence. --cores used to keep
// the first value and --mix used to co-schedule the union of every
// occurrence.

TEST(BenchOptions, RepeatedScalarFlagsLastWin) {
  BenchOptions O = parseOpts({"--cores=2", "--jobs=2", "--sim-threads=2",
                              "--cores=8", "--jobs=3", "--sim-threads=4"});
  EXPECT_EQ(O.Cores, 8u);
  EXPECT_EQ(O.Jobs, 3u);
  EXPECT_EQ(O.SimThreads, 4u);
}

TEST(BenchOptions, RepeatedMixReplacesInsteadOfAppending) {
  BenchOptions O = parseOpts({"--mix=libq,cigar", "--mix=fft"});
  ASSERT_EQ(O.Mix.size(), 1u) << "each --mix must replace the previous list";
  EXPECT_EQ(O.Mix[0], "fft");
}

TEST(BenchOptions, RepeatedGovernorLastWins) {
  BenchOptions O = parseOpts({"--governor=ondemand", "--governor=conservative"});
  EXPECT_EQ(O.Governor, "conservative");
}

TEST(BenchOptions, RepeatedBackendLastWins) {
  unsetenv("DAECC_SIM_BACKEND");
  BenchOptions O = parseOpts({"--sim-backend=switch", "--sim-backend=native"});
  EXPECT_EQ(O.Backend, SimBackend::Native);
}

TEST(BenchUtilDeathTest, EarlyInvalidOccurrenceStillHardErrors) {
  // Every occurrence is validated; a typo cannot hide behind a later
  // correct repeat.
  EXPECT_EXIT(parseOpts({"--sim-backend=fastest", "--sim-backend=native"}),
              ::testing::ExitedWithCode(2),
              "unknown --sim-backend value 'fastest'");
  EXPECT_EXIT(parseOpts({"--cores=many", "--cores=4"}),
              ::testing::ExitedWithCode(2), "invalid --cores value 'many'");
  EXPECT_EXIT(parseOpts({"--governor=powersave", "--governor=both"}),
              ::testing::ExitedWithCode(2),
              "unknown --governor value 'powersave'");
}

// The strict name mapping itself (shared by flag and env paths).
TEST(BenchUtil, SimBackendFromNameIsStrict) {
  SimBackend B = SimBackend::Switch;
  EXPECT_FALSE(simBackendFromName(nullptr, B));
  EXPECT_FALSE(simBackendFromName("", B));
  EXPECT_FALSE(simBackendFromName("Threaded", B)); // case-sensitive
  EXPECT_FALSE(simBackendFromName("threaded ", B));
  EXPECT_EQ(B, SimBackend::Switch) << "failed parse must not write Out";
  EXPECT_TRUE(simBackendFromName("native", B));
  EXPECT_EQ(B, SimBackend::Native);
}

// --- Daemon-mode flags and the strict env integer parses ------------------

TEST(BenchOptions, ServeFlagsParse) {
  unsetenv("DAECC_CACHE_DIR");
  BenchOptions O = parseOpts({"--serve", "--socket=/tmp/x.sock",
                              "--cache-dir=/tmp/cache"});
  EXPECT_TRUE(O.Serve);
  EXPECT_EQ(O.SocketPath, "/tmp/x.sock");
  EXPECT_EQ(O.CacheDir, "/tmp/cache");

  BenchOptions D = parseOpts({});
  EXPECT_FALSE(D.Serve);
  EXPECT_EQ(D.SocketPath, "daecc.sock");
  EXPECT_TRUE(D.CacheDir.empty());
}

TEST(BenchOptions, CacheDirEnvDefaultAndFlagOverride) {
  setenv("DAECC_CACHE_DIR", "/tmp/from_env", 1);
  EXPECT_EQ(parseOpts({}).CacheDir, "/tmp/from_env");
  // Flag wins, and an explicitly empty flag re-disables the env default.
  EXPECT_EQ(parseOpts({"--cache-dir=/tmp/flag"}).CacheDir, "/tmp/flag");
  EXPECT_TRUE(parseOpts({"--cache-dir="}).CacheDir.empty());
  unsetenv("DAECC_CACHE_DIR");
}

TEST(BenchUtilDeathTest, EmptySocketPathIsAHardError) {
  EXPECT_EXIT(parseOpts({"--socket="}), ::testing::ExitedWithCode(2),
              "--socket requires a path");
}

TEST(BenchUtilDeathTest, GarbageIntegerEnvIsAHardError) {
  // These env knobs used to go through atoi (garbage read as 0, then
  // silently clamped to 1): a sweep exporting DAECC_JOBS=8x would run
  // sequentially while its labels claimed 8 jobs.
  EXPECT_EXIT(
      {
        setenv("DAECC_JOBS", "8x", 1);
        parseOpts({});
        std::exit(0);
      },
      ::testing::ExitedWithCode(2), "invalid DAECC_JOBS value '8x'");
  unsetenv("DAECC_JOBS");
  EXPECT_EXIT(
      {
        setenv("DAECC_SIM_THREADS", "-3", 1);
        parseOpts({});
        std::exit(0);
      },
      ::testing::ExitedWithCode(2), "invalid DAECC_SIM_THREADS value '-3'");
  unsetenv("DAECC_SIM_THREADS");
  EXPECT_EXIT(
      {
        setenv("DAECC_REPLAY_OVERLAP", "yes", 1);
        parseOpts({});
        std::exit(0);
      },
      ::testing::ExitedWithCode(2),
      "invalid DAECC_REPLAY_OVERLAP value 'yes' \\(expected 0 or 1\\)");
  unsetenv("DAECC_REPLAY_OVERLAP");
  EXPECT_EXIT(
      {
        setenv("DAECC_TEST_SCALE", "true", 1);
        parseOpts({});
        std::exit(0);
      },
      ::testing::ExitedWithCode(2), "invalid DAECC_TEST_SCALE value 'true'");
  unsetenv("DAECC_TEST_SCALE");
}

TEST(BenchUtilDeathTest, OutOfRangeIntegerEnvIsAHardError) {
  // strtol saturates on overflow and a too-wide value truncates through the
  // unsigned cast: DAECC_JOBS=4294967297 (2^32+1) used to silently read as
  // 1 — the exact silent-misconfiguration class the validated parse exists
  // to reject. Both the fits-in-long-long-but-not-unsigned case and the
  // saturating ERANGE case must exit 2.
  EXPECT_EXIT(
      {
        setenv("DAECC_JOBS", "4294967297", 1);
        parseOpts({});
        std::exit(0);
      },
      ::testing::ExitedWithCode(2), "invalid DAECC_JOBS value '4294967297'");
  unsetenv("DAECC_JOBS");
  EXPECT_EXIT(
      {
        setenv("DAECC_SIM_THREADS", "99999999999999999999999", 1);
        parseOpts({});
        std::exit(0);
      },
      ::testing::ExitedWithCode(2), "invalid DAECC_SIM_THREADS value");
  unsetenv("DAECC_SIM_THREADS");
  EXPECT_EXIT(parseOpts({"--jobs=4294967297"}), ::testing::ExitedWithCode(2),
              "invalid --jobs value '4294967297'");
}

TEST(BenchUtil, ValidIntegerEnvStillWorks) {
  setenv("DAECC_JOBS", "4", 1);
  setenv("DAECC_SIM_THREADS", "2", 1);
  BenchOptions O = parseOpts({});
  EXPECT_EQ(O.Jobs, 4u);
  EXPECT_EQ(O.SimThreads, 2u);
  unsetenv("DAECC_JOBS");
  unsetenv("DAECC_SIM_THREADS");
}

TEST(BenchUtil, ReporterJsonIsPublishedAtomically) {
  // checkpointService republishes BENCH_<name>.json via temp-file + rename;
  // after it returns there must be a complete file and no lingering temp.
  ThroughputReporter R("atomic_probe", 1, 1);
  R.start();
  R.checkpointService("{\"requests\": 1}");
  std::FILE *F = std::fopen("BENCH_atomic_probe.json", "r");
  ASSERT_NE(F, nullptr);
  std::string Content;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Content.append(Buf, N);
  std::fclose(F);
  EXPECT_NE(Content.find("\"status\": \"serving\""), std::string::npos);
  EXPECT_NE(Content.find("\"service\": {\"requests\": 1}"),
            std::string::npos);
  std::string Tmp =
      "BENCH_atomic_probe.json.tmp." + std::to_string(::getpid());
  EXPECT_EQ(std::fopen(Tmp.c_str(), "r"), nullptr);
  std::remove("BENCH_atomic_probe.json");
}

TEST(BenchUtil, ConcurrentCheckpointsPublishCompleteJson) {
  // In daemon mode checkpointService is called from concurrent connection
  // threads; the reporter serializes them internally, so however the racing
  // checkpoints interleave, the published file is always one complete JSON
  // object and no temp file lingers.
  ThroughputReporter R("concurrent_probe", 1, 1);
  R.start();
  std::vector<std::thread> Ts;
  for (int T = 0; T != 4; ++T)
    Ts.emplace_back([&R, T] {
      for (int I = 0; I != 25; ++I)
        R.checkpointService("{\"requests\": " +
                            std::to_string(T * 100 + I) + "}");
    });
  for (std::thread &T : Ts)
    T.join();
  std::FILE *F = std::fopen("BENCH_concurrent_probe.json", "r");
  ASSERT_NE(F, nullptr);
  std::string Content;
  char Buf[4096];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Content.append(Buf, N);
  std::fclose(F);
  EXPECT_NE(Content.find("\"status\": \"serving\""), std::string::npos);
  EXPECT_NE(Content.find("\"service\": {\"requests\": "), std::string::npos);
  EXPECT_EQ(Content.rfind("}\n"), Content.size() - 2);
  std::string Tmp =
      "BENCH_concurrent_probe.json.tmp." + std::to_string(::getpid());
  EXPECT_EQ(std::fopen(Tmp.c_str(), "r"), nullptr);
  std::remove("BENCH_concurrent_probe.json");
}

} // namespace
