//===- tests/bench/BenchUtilTest.cpp - Bench flag parsing ------------------===//
//
// Part of daecc. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the bench drivers' shared flag parsing, centered on the
// backend selection: every valid --sim-backend / DAECC_SIM_BACKEND name maps
// to its SimBackend, and any unknown value is a hard error (exit 2) naming
// the valid choices — never a silent fall-back that would let a sweep
// mislabel which backend it measured.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchUtil.h"

#include <gtest/gtest.h>

#include <cstdlib>

using namespace dae;
using namespace dae::bench;
using namespace dae::sim;

namespace {

SimBackend parse(const char *Flag) {
  char Prog[] = "bench";
  char Arg[64];
  std::snprintf(Arg, sizeof(Arg), "%s", Flag);
  char *Argv[] = {Prog, Arg};
  return backendFromArgs(2, Argv);
}

TEST(BenchUtil, BackendFlagMapsEveryValidName) {
  EXPECT_EQ(parse("--sim-backend=switch"), SimBackend::Switch);
  EXPECT_EQ(parse("--sim-backend=threaded"), SimBackend::Threaded);
  EXPECT_EQ(parse("--sim-backend=native"), SimBackend::Native);
}

TEST(BenchUtil, BackendDefaultsWithoutFlag) {
  unsetenv("DAECC_SIM_BACKEND");
  char Prog[] = "bench";
  char *Argv[] = {Prog};
  EXPECT_EQ(backendFromArgs(1, Argv), SimBackend::Threaded);
}

TEST(BenchUtil, BackendEnvOverridesDefault) {
  setenv("DAECC_SIM_BACKEND", "native", 1);
  char Prog[] = "bench";
  char *Argv[] = {Prog};
  EXPECT_EQ(backendFromArgs(1, Argv), SimBackend::Native);
  setenv("DAECC_SIM_BACKEND", "switch", 1);
  EXPECT_EQ(backendFromArgs(1, Argv), SimBackend::Switch);
  unsetenv("DAECC_SIM_BACKEND");
}

TEST(BenchUtil, FlagOverridesEnv) {
  setenv("DAECC_SIM_BACKEND", "switch", 1);
  EXPECT_EQ(parse("--sim-backend=native"), SimBackend::Native);
  unsetenv("DAECC_SIM_BACKEND");
}

TEST(BenchUtilDeathTest, UnknownBackendFlagIsAHardError) {
  EXPECT_EXIT(parse("--sim-backend=fastest"),
              ::testing::ExitedWithCode(2),
              "unknown --sim-backend value 'fastest'.*'switch', 'threaded' "
              "or 'native'");
}

TEST(BenchUtilDeathTest, UnknownBackendEnvIsAHardError) {
  char Prog[] = "bench";
  char *Argv[] = {Prog};
  EXPECT_EXIT(
      {
        setenv("DAECC_SIM_BACKEND", "turbo", 1);
        backendFromArgs(1, Argv);
      },
      ::testing::ExitedWithCode(2), "unknown DAECC_SIM_BACKEND value 'turbo'");
  unsetenv("DAECC_SIM_BACKEND");
}

// The strict name mapping itself (shared by flag and env paths).
TEST(BenchUtil, SimBackendFromNameIsStrict) {
  SimBackend B = SimBackend::Switch;
  EXPECT_FALSE(simBackendFromName(nullptr, B));
  EXPECT_FALSE(simBackendFromName("", B));
  EXPECT_FALSE(simBackendFromName("Threaded", B)); // case-sensitive
  EXPECT_FALSE(simBackendFromName("threaded ", B));
  EXPECT_EQ(B, SimBackend::Switch) << "failed parse must not write Out";
  EXPECT_TRUE(simBackendFromName("native", B));
  EXPECT_EQ(B, SimBackend::Native);
}

} // namespace
