file(REMOVE_RECURSE
  "libdaecc_ir.a"
)
