file(REMOVE_RECURSE
  "CMakeFiles/daecc_ir.dir/Cloner.cpp.o"
  "CMakeFiles/daecc_ir.dir/Cloner.cpp.o.d"
  "CMakeFiles/daecc_ir.dir/IR.cpp.o"
  "CMakeFiles/daecc_ir.dir/IR.cpp.o.d"
  "CMakeFiles/daecc_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/daecc_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/daecc_ir.dir/Printer.cpp.o"
  "CMakeFiles/daecc_ir.dir/Printer.cpp.o.d"
  "CMakeFiles/daecc_ir.dir/Verifier.cpp.o"
  "CMakeFiles/daecc_ir.dir/Verifier.cpp.o.d"
  "libdaecc_ir.a"
  "libdaecc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
