# Empty dependencies file for daecc_ir.
# This may be replaced when dependencies are built.
