file(REMOVE_RECURSE
  "CMakeFiles/daecc_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/daecc_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/daecc_analysis.dir/LoopInfo.cpp.o"
  "CMakeFiles/daecc_analysis.dir/LoopInfo.cpp.o.d"
  "CMakeFiles/daecc_analysis.dir/ScalarEvolution.cpp.o"
  "CMakeFiles/daecc_analysis.dir/ScalarEvolution.cpp.o.d"
  "CMakeFiles/daecc_analysis.dir/TaskAnalysis.cpp.o"
  "CMakeFiles/daecc_analysis.dir/TaskAnalysis.cpp.o.d"
  "libdaecc_analysis.a"
  "libdaecc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
