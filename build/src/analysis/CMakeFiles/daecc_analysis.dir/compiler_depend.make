# Empty compiler generated dependencies file for daecc_analysis.
# This may be replaced when dependencies are built.
