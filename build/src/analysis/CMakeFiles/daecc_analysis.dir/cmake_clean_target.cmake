file(REMOVE_RECURSE
  "libdaecc_analysis.a"
)
