file(REMOVE_RECURSE
  "libdaecc_sim.a"
)
