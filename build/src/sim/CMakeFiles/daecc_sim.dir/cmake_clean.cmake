file(REMOVE_RECURSE
  "CMakeFiles/daecc_sim.dir/CacheSim.cpp.o"
  "CMakeFiles/daecc_sim.dir/CacheSim.cpp.o.d"
  "CMakeFiles/daecc_sim.dir/Interpreter.cpp.o"
  "CMakeFiles/daecc_sim.dir/Interpreter.cpp.o.d"
  "CMakeFiles/daecc_sim.dir/Memory.cpp.o"
  "CMakeFiles/daecc_sim.dir/Memory.cpp.o.d"
  "libdaecc_sim.a"
  "libdaecc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
