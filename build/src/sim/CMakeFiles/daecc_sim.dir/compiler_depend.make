# Empty compiler generated dependencies file for daecc_sim.
# This may be replaced when dependencies are built.
