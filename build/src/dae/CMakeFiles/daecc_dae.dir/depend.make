# Empty dependencies file for daecc_dae.
# This may be replaced when dependencies are built.
