file(REMOVE_RECURSE
  "libdaecc_dae.a"
)
