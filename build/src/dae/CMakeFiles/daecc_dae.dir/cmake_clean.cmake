file(REMOVE_RECURSE
  "CMakeFiles/daecc_dae.dir/AccessGenerator.cpp.o"
  "CMakeFiles/daecc_dae.dir/AccessGenerator.cpp.o.d"
  "CMakeFiles/daecc_dae.dir/AffineGenerator.cpp.o"
  "CMakeFiles/daecc_dae.dir/AffineGenerator.cpp.o.d"
  "CMakeFiles/daecc_dae.dir/SkeletonGenerator.cpp.o"
  "CMakeFiles/daecc_dae.dir/SkeletonGenerator.cpp.o.d"
  "libdaecc_dae.a"
  "libdaecc_dae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_dae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
