file(REMOVE_RECURSE
  "libdaecc_support.a"
)
