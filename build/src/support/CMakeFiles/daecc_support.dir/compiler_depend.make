# Empty compiler generated dependencies file for daecc_support.
# This may be replaced when dependencies are built.
