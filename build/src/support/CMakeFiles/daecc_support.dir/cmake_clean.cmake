file(REMOVE_RECURSE
  "CMakeFiles/daecc_support.dir/Format.cpp.o"
  "CMakeFiles/daecc_support.dir/Format.cpp.o.d"
  "CMakeFiles/daecc_support.dir/Rational.cpp.o"
  "CMakeFiles/daecc_support.dir/Rational.cpp.o.d"
  "libdaecc_support.a"
  "libdaecc_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
