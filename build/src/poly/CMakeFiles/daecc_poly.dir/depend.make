# Empty dependencies file for daecc_poly.
# This may be replaced when dependencies are built.
