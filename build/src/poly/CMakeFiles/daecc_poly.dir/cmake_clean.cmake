file(REMOVE_RECURSE
  "CMakeFiles/daecc_poly.dir/ConvexHull.cpp.o"
  "CMakeFiles/daecc_poly.dir/ConvexHull.cpp.o.d"
  "CMakeFiles/daecc_poly.dir/Ehrhart.cpp.o"
  "CMakeFiles/daecc_poly.dir/Ehrhart.cpp.o.d"
  "CMakeFiles/daecc_poly.dir/Polyhedron.cpp.o"
  "CMakeFiles/daecc_poly.dir/Polyhedron.cpp.o.d"
  "libdaecc_poly.a"
  "libdaecc_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
