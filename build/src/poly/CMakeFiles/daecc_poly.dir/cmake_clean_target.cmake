file(REMOVE_RECURSE
  "libdaecc_poly.a"
)
