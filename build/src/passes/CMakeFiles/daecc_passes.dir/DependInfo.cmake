
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/passes/ConstantFolding.cpp" "src/passes/CMakeFiles/daecc_passes.dir/ConstantFolding.cpp.o" "gcc" "src/passes/CMakeFiles/daecc_passes.dir/ConstantFolding.cpp.o.d"
  "/root/repo/src/passes/DCE.cpp" "src/passes/CMakeFiles/daecc_passes.dir/DCE.cpp.o" "gcc" "src/passes/CMakeFiles/daecc_passes.dir/DCE.cpp.o.d"
  "/root/repo/src/passes/Inliner.cpp" "src/passes/CMakeFiles/daecc_passes.dir/Inliner.cpp.o" "gcc" "src/passes/CMakeFiles/daecc_passes.dir/Inliner.cpp.o.d"
  "/root/repo/src/passes/LoopDeletion.cpp" "src/passes/CMakeFiles/daecc_passes.dir/LoopDeletion.cpp.o" "gcc" "src/passes/CMakeFiles/daecc_passes.dir/LoopDeletion.cpp.o.d"
  "/root/repo/src/passes/SimplifyCFG.cpp" "src/passes/CMakeFiles/daecc_passes.dir/SimplifyCFG.cpp.o" "gcc" "src/passes/CMakeFiles/daecc_passes.dir/SimplifyCFG.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/daecc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/daecc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
