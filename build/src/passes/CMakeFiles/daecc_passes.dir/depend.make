# Empty dependencies file for daecc_passes.
# This may be replaced when dependencies are built.
