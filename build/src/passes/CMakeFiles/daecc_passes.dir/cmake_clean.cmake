file(REMOVE_RECURSE
  "CMakeFiles/daecc_passes.dir/ConstantFolding.cpp.o"
  "CMakeFiles/daecc_passes.dir/ConstantFolding.cpp.o.d"
  "CMakeFiles/daecc_passes.dir/DCE.cpp.o"
  "CMakeFiles/daecc_passes.dir/DCE.cpp.o.d"
  "CMakeFiles/daecc_passes.dir/Inliner.cpp.o"
  "CMakeFiles/daecc_passes.dir/Inliner.cpp.o.d"
  "CMakeFiles/daecc_passes.dir/LoopDeletion.cpp.o"
  "CMakeFiles/daecc_passes.dir/LoopDeletion.cpp.o.d"
  "CMakeFiles/daecc_passes.dir/SimplifyCFG.cpp.o"
  "CMakeFiles/daecc_passes.dir/SimplifyCFG.cpp.o.d"
  "libdaecc_passes.a"
  "libdaecc_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
