file(REMOVE_RECURSE
  "libdaecc_passes.a"
)
