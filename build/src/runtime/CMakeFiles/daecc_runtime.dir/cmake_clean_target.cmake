file(REMOVE_RECURSE
  "libdaecc_runtime.a"
)
