# Empty compiler generated dependencies file for daecc_runtime.
# This may be replaced when dependencies are built.
