file(REMOVE_RECURSE
  "CMakeFiles/daecc_runtime.dir/Evaluator.cpp.o"
  "CMakeFiles/daecc_runtime.dir/Evaluator.cpp.o.d"
  "CMakeFiles/daecc_runtime.dir/Runtime.cpp.o"
  "CMakeFiles/daecc_runtime.dir/Runtime.cpp.o.d"
  "libdaecc_runtime.a"
  "libdaecc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
