
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Evaluator.cpp" "src/runtime/CMakeFiles/daecc_runtime.dir/Evaluator.cpp.o" "gcc" "src/runtime/CMakeFiles/daecc_runtime.dir/Evaluator.cpp.o.d"
  "/root/repo/src/runtime/Runtime.cpp" "src/runtime/CMakeFiles/daecc_runtime.dir/Runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/daecc_runtime.dir/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/daecc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/daecc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
