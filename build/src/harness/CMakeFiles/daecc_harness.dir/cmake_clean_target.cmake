file(REMOVE_RECURSE
  "libdaecc_harness.a"
)
