file(REMOVE_RECURSE
  "CMakeFiles/daecc_harness.dir/Harness.cpp.o"
  "CMakeFiles/daecc_harness.dir/Harness.cpp.o.d"
  "libdaecc_harness.a"
  "libdaecc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
