# Empty dependencies file for daecc_harness.
# This may be replaced when dependencies are built.
