file(REMOVE_RECURSE
  "libdaecc_workloads.a"
)
