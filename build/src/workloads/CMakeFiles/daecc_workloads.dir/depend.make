# Empty dependencies file for daecc_workloads.
# This may be replaced when dependencies are built.
