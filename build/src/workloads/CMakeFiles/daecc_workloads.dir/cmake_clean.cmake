file(REMOVE_RECURSE
  "CMakeFiles/daecc_workloads.dir/Cg.cpp.o"
  "CMakeFiles/daecc_workloads.dir/Cg.cpp.o.d"
  "CMakeFiles/daecc_workloads.dir/Cholesky.cpp.o"
  "CMakeFiles/daecc_workloads.dir/Cholesky.cpp.o.d"
  "CMakeFiles/daecc_workloads.dir/Cigar.cpp.o"
  "CMakeFiles/daecc_workloads.dir/Cigar.cpp.o.d"
  "CMakeFiles/daecc_workloads.dir/Fft.cpp.o"
  "CMakeFiles/daecc_workloads.dir/Fft.cpp.o.d"
  "CMakeFiles/daecc_workloads.dir/Lbm.cpp.o"
  "CMakeFiles/daecc_workloads.dir/Lbm.cpp.o.d"
  "CMakeFiles/daecc_workloads.dir/LibQuantum.cpp.o"
  "CMakeFiles/daecc_workloads.dir/LibQuantum.cpp.o.d"
  "CMakeFiles/daecc_workloads.dir/Lu.cpp.o"
  "CMakeFiles/daecc_workloads.dir/Lu.cpp.o.d"
  "CMakeFiles/daecc_workloads.dir/Registry.cpp.o"
  "CMakeFiles/daecc_workloads.dir/Registry.cpp.o.d"
  "libdaecc_workloads.a"
  "libdaecc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/daecc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
