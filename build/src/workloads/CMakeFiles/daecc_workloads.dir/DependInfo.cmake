
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Cg.cpp" "src/workloads/CMakeFiles/daecc_workloads.dir/Cg.cpp.o" "gcc" "src/workloads/CMakeFiles/daecc_workloads.dir/Cg.cpp.o.d"
  "/root/repo/src/workloads/Cholesky.cpp" "src/workloads/CMakeFiles/daecc_workloads.dir/Cholesky.cpp.o" "gcc" "src/workloads/CMakeFiles/daecc_workloads.dir/Cholesky.cpp.o.d"
  "/root/repo/src/workloads/Cigar.cpp" "src/workloads/CMakeFiles/daecc_workloads.dir/Cigar.cpp.o" "gcc" "src/workloads/CMakeFiles/daecc_workloads.dir/Cigar.cpp.o.d"
  "/root/repo/src/workloads/Fft.cpp" "src/workloads/CMakeFiles/daecc_workloads.dir/Fft.cpp.o" "gcc" "src/workloads/CMakeFiles/daecc_workloads.dir/Fft.cpp.o.d"
  "/root/repo/src/workloads/Lbm.cpp" "src/workloads/CMakeFiles/daecc_workloads.dir/Lbm.cpp.o" "gcc" "src/workloads/CMakeFiles/daecc_workloads.dir/Lbm.cpp.o.d"
  "/root/repo/src/workloads/LibQuantum.cpp" "src/workloads/CMakeFiles/daecc_workloads.dir/LibQuantum.cpp.o" "gcc" "src/workloads/CMakeFiles/daecc_workloads.dir/LibQuantum.cpp.o.d"
  "/root/repo/src/workloads/Lu.cpp" "src/workloads/CMakeFiles/daecc_workloads.dir/Lu.cpp.o" "gcc" "src/workloads/CMakeFiles/daecc_workloads.dir/Lu.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/daecc_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/daecc_workloads.dir/Registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/daecc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/dae/CMakeFiles/daecc_dae.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/daecc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/daecc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/daecc_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/daecc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/daecc_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
