
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/InterpreterDifferentialTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/InterpreterDifferentialTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/InterpreterDifferentialTest.cpp.o.d"
  "/root/repo/tests/sim/SimTest.cpp" "tests/CMakeFiles/sim_tests.dir/sim/SimTest.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/SimTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/daecc_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/daecc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/daecc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/daecc_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/daecc_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/daecc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
