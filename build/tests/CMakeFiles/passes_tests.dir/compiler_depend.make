# Empty compiler generated dependencies file for passes_tests.
# This may be replaced when dependencies are built.
