# Empty compiler generated dependencies file for dae_tests.
# This may be replaced when dependencies are built.
