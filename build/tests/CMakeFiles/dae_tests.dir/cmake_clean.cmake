file(REMOVE_RECURSE
  "CMakeFiles/dae_tests.dir/dae/AffineGeneratorTest.cpp.o"
  "CMakeFiles/dae_tests.dir/dae/AffineGeneratorTest.cpp.o.d"
  "CMakeFiles/dae_tests.dir/dae/GeneratorFuzzTest.cpp.o"
  "CMakeFiles/dae_tests.dir/dae/GeneratorFuzzTest.cpp.o.d"
  "CMakeFiles/dae_tests.dir/dae/SkeletonGeneratorTest.cpp.o"
  "CMakeFiles/dae_tests.dir/dae/SkeletonGeneratorTest.cpp.o.d"
  "dae_tests"
  "dae_tests.pdb"
  "dae_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dae_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
