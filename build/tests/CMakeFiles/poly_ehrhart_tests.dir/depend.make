# Empty dependencies file for poly_ehrhart_tests.
# This may be replaced when dependencies are built.
