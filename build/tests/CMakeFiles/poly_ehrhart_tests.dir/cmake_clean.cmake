file(REMOVE_RECURSE
  "CMakeFiles/poly_ehrhart_tests.dir/poly/EhrhartTest.cpp.o"
  "CMakeFiles/poly_ehrhart_tests.dir/poly/EhrhartTest.cpp.o.d"
  "poly_ehrhart_tests"
  "poly_ehrhart_tests.pdb"
  "poly_ehrhart_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/poly_ehrhart_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
