# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/poly_tests[1]_include.cmake")
include("/root/repo/build/tests/dae_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/support_tests[1]_include.cmake")
include("/root/repo/build/tests/ir_tests[1]_include.cmake")
include("/root/repo/build/tests/analysis_tests[1]_include.cmake")
include("/root/repo/build/tests/passes_tests[1]_include.cmake")
include("/root/repo/build/tests/poly_ehrhart_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/runtime_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
