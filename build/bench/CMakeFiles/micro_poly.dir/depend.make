# Empty dependencies file for micro_poly.
# This may be replaced when dependencies are built.
