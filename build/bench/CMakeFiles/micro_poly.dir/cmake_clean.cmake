file(REMOVE_RECURSE
  "CMakeFiles/micro_poly.dir/micro_poly.cpp.o"
  "CMakeFiles/micro_poly.dir/micro_poly.cpp.o.d"
  "micro_poly"
  "micro_poly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_poly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
