file(REMOVE_RECURSE
  "CMakeFiles/ablation_affine.dir/ablation_affine.cpp.o"
  "CMakeFiles/ablation_affine.dir/ablation_affine.cpp.o.d"
  "ablation_affine"
  "ablation_affine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_affine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
