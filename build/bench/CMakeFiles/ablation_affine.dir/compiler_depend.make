# Empty compiler generated dependencies file for ablation_affine.
# This may be replaced when dependencies are built.
