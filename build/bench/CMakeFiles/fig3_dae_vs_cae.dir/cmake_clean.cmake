file(REMOVE_RECURSE
  "CMakeFiles/fig3_dae_vs_cae.dir/fig3_dae_vs_cae.cpp.o"
  "CMakeFiles/fig3_dae_vs_cae.dir/fig3_dae_vs_cae.cpp.o.d"
  "fig3_dae_vs_cae"
  "fig3_dae_vs_cae.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dae_vs_cae.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
