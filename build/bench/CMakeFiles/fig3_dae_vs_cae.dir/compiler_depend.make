# Empty compiler generated dependencies file for fig3_dae_vs_cae.
# This may be replaced when dependencies are built.
