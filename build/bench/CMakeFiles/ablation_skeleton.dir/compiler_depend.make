# Empty compiler generated dependencies file for ablation_skeleton.
# This may be replaced when dependencies are built.
