file(REMOVE_RECURSE
  "CMakeFiles/ablation_skeleton.dir/ablation_skeleton.cpp.o"
  "CMakeFiles/ablation_skeleton.dir/ablation_skeleton.cpp.o.d"
  "ablation_skeleton"
  "ablation_skeleton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_skeleton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
