# Empty dependencies file for micro_codegen.
# This may be replaced when dependencies are built.
