file(REMOVE_RECURSE
  "CMakeFiles/micro_codegen.dir/micro_codegen.cpp.o"
  "CMakeFiles/micro_codegen.dir/micro_codegen.cpp.o.d"
  "micro_codegen"
  "micro_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
