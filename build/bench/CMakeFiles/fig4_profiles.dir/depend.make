# Empty dependencies file for fig4_profiles.
# This may be replaced when dependencies are built.
