file(REMOVE_RECURSE
  "CMakeFiles/affine_lu.dir/affine_lu.cpp.o"
  "CMakeFiles/affine_lu.dir/affine_lu.cpp.o.d"
  "affine_lu"
  "affine_lu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affine_lu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
