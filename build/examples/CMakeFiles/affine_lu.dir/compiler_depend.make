# Empty compiler generated dependencies file for affine_lu.
# This may be replaced when dependencies are built.
