file(REMOVE_RECURSE
  "CMakeFiles/sparse_cg.dir/sparse_cg.cpp.o"
  "CMakeFiles/sparse_cg.dir/sparse_cg.cpp.o.d"
  "sparse_cg"
  "sparse_cg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_cg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
