# Empty compiler generated dependencies file for sparse_cg.
# This may be replaced when dependencies are built.
