
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/harness/CMakeFiles/daecc_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/daecc_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dae/CMakeFiles/daecc_dae.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/daecc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/daecc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/poly/CMakeFiles/daecc_poly.dir/DependInfo.cmake"
  "/root/repo/build/src/passes/CMakeFiles/daecc_passes.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/daecc_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/daecc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/daecc_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
